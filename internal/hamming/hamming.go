// Package hamming implements single-error-correcting, double-error-
// detecting (SECDED) Hamming codes: the classical (72,64) word-granularity
// code of commodity ECC memories and the (523,512)-style line-granularity
// code that MECC uses as its weak ECC (11 check bits per 64-byte line,
// paper Section III-D).
package hamming

import (
	"errors"
	"fmt"
	"math/bits"
)

// Errors returned by code construction and use.
var (
	ErrBadDataBits = errors.New("hamming: data bits must be in [1, 4096]")
	ErrBadInput    = errors.New("hamming: input has wrong number of words")
)

// Result describes the outcome of a decode.
type Result struct {
	// CorrectedBits is 1 when a single-bit error (data, check or overall
	// parity) was repaired, otherwise 0.
	CorrectedBits int
	// Uncorrectable is set when a double-bit error was detected.
	Uncorrectable bool
}

// SECDED is a Hamming single-error-correcting code over dataBits bits,
// extended with an overall parity bit for double-error detection. It is
// immutable after construction and safe for concurrent use.
type SECDED struct {
	dataBits  int
	checkBits int // Hamming check bits, excluding the overall parity bit
	n         int // codeword length without the parity bit
	dataPos   []uint32
	posToData []int32 // codeword position -> data index, -1 for check bits
	// masks holds one bit-sliced selector per check bit: row j (stride
	// maskStride words) has bit i set when data bit i contributes to
	// syndrome bit j, i.e. bit j of dataPos[i] is set. Syndrome bit j is
	// then the parity of the fold-XOR of data AND row j — a handful of
	// word operations instead of a walk over every data bit.
	masks      []uint64
	maskStride int
	// lastMask zeroes the slack bits of the last data word, so popcounts
	// over whole words match the bit-serial walk that stops at dataBits.
	lastMask uint64
	// errLen is the prebuilt wrong-length error, so the Encode/Decode
	// guard clauses stay allocation-free even when they fire.
	errLen error
}

// NewSECDED constructs a SECDED code for the given number of data bits.
// The total check overhead is CheckBits(): e.g. 8 for 64 data bits (the
// (72,64) code) and 11 for 512 data bits (the MECC weak code).
func NewSECDED(dataBits int) (*SECDED, error) {
	if dataBits < 1 || dataBits > 4096 {
		return nil, fmt.Errorf("%w: %d", ErrBadDataBits, dataBits)
	}
	r := 2
	for (1<<r)-r-1 < dataBits {
		r++
	}
	n := dataBits + r
	s := &SECDED{
		dataBits:  dataBits,
		checkBits: r,
		n:         n,
		dataPos:   make([]uint32, dataBits),
		posToData: make([]int32, n+1),
	}
	idx := 0
	for pos := 1; pos <= n; pos++ {
		if pos&(pos-1) == 0 { // power of two: check-bit position
			s.posToData[pos] = -1
			continue
		}
		s.dataPos[idx] = uint32(pos)
		s.posToData[pos] = int32(idx)
		idx++
	}
	s.buildMasks()
	s.errLen = fmt.Errorf("%w: want %d", ErrBadInput, s.wordsNeeded())
	return s, nil
}

// buildMasks derives the bit-sliced syndrome selectors from dataPos.
func (s *SECDED) buildMasks() {
	s.maskStride = s.wordsNeeded()
	s.masks = make([]uint64, s.checkBits*s.maskStride)
	for i, pos := range s.dataPos {
		for j := 0; j < s.checkBits; j++ {
			if pos>>uint(j)&1 == 1 {
				s.masks[j*s.maskStride+i/64] |= 1 << (uint(i) & 63)
			}
		}
	}
	if tail := uint(s.dataBits) & 63; tail != 0 {
		s.lastMask = (uint64(1) << tail) - 1
	} else {
		s.lastMask = ^uint64(0)
	}
}

// DataBits returns the number of protected data bits.
func (s *SECDED) DataBits() int { return s.dataBits }

// CheckBits returns the total stored check width, including the overall
// parity bit.
func (s *SECDED) CheckBits() int { return s.checkBits + 1 }

// getBit reads bit i from a little-endian word vector.
func getBit(v []uint64, i int) uint64 { return (v[i>>6] >> (uint(i) & 63)) & 1 }

// flipBit inverts bit i of a little-endian word vector in place.
func flipBit(v []uint64, i int) { v[i>>6] ^= 1 << (uint(i) & 63) }

func (s *SECDED) wordsNeeded() int { return (s.dataBits + 63) / 64 }

// syndromeOf evaluates the Hamming syndrome and the data popcount in one
// word-parallel pass: each syndrome bit is the parity of the fold-XOR of
// the data words under its bit-sliced mask. Equivalent to walking every
// data bit through dataPos (see syndromeBitSerial, the retained
// reference), at a fraction of the cost.
//
//meccvet:hotpath
func (s *SECDED) syndromeOf(data []uint64) (uint32, int) {
	last := len(data) - 1
	ones := 0
	for w := 0; w < last; w++ {
		ones += bits.OnesCount64(data[w])
	}
	ones += bits.OnesCount64(data[last] & s.lastMask)
	var synd uint32
	stride := s.maskStride
	for j := 0; j < s.checkBits; j++ {
		row := s.masks[j*stride : (j+1)*stride]
		var acc uint64
		for w := range row {
			acc ^= data[w] & row[w]
		}
		synd |= uint32(bits.OnesCount64(acc)&1) << uint(j)
	}
	return synd, ones
}

// syndromeBitSerial is the reference bit-serial syndrome walk, kept for
// the equivalence property test.
func (s *SECDED) syndromeBitSerial(data []uint64) (uint32, int) {
	var synd uint32
	ones := 0
	for i := 0; i < s.dataBits; i++ {
		if getBit(data, i) == 1 {
			synd ^= s.dataPos[i]
			ones++
		}
	}
	return synd, ones
}

// Encode computes the check word for data, given as ceil(dataBits/64)
// little-endian words. Layout of the returned word: bits [0,checkBits) are
// the Hamming check bits (bit j covers positions with bit j set), bit
// checkBits is the overall parity over data and check bits.
func (s *SECDED) Encode(data []uint64) (uint64, error) {
	if len(data) != s.wordsNeeded() {
		return 0, s.errLen
	}
	synd, ones := s.syndromeOf(data)
	check := uint64(synd)
	ones += bits.OnesCount32(synd)
	parity := uint64(ones) & 1
	return check | parity<<s.checkBits, nil
}

// ScreenClean reports whether (data, check) is a clean stored codeword:
// zero syndrome and matching overall parity, exactly the condition under
// which Decode returns a zero Result. It is the allocation-free fast
// screen the batched upgrade sweep runs before falling back to Decode;
// check bits above the stored width are ignored, as in Decode. Inputs of
// the wrong length screen as not-clean.
//
//meccvet:hotpath
func (s *SECDED) ScreenClean(data []uint64, check uint64) bool {
	if len(data) != s.wordsNeeded() {
		return false
	}
	synd, ones := s.syndromeOf(data)
	if synd != uint32(check&((1<<s.checkBits)-1)) {
		return false
	}
	ones += bits.OnesCount32(synd)
	return uint64(ones)&1 == (check>>s.checkBits)&1
}

// Decode verifies data against the stored check word, correcting a single
// bit error in place (data is modified) and detecting double errors.
func (s *SECDED) Decode(data []uint64, check uint64) (Result, error) {
	if len(data) != s.wordsNeeded() {
		return Result{}, s.errLen
	}
	storedParity := (check >> s.checkBits) & 1
	storedCheck := uint32(check & ((1 << s.checkBits) - 1))

	synd, ones := s.syndromeOf(data)
	synd ^= storedCheck
	ones += bits.OnesCount32(storedCheck)
	parityErr := (uint64(ones)&1 != storedParity)

	switch {
	case synd == 0 && !parityErr:
		return Result{}, nil
	case synd == 0 && parityErr:
		// The overall parity bit itself flipped; data is intact.
		return Result{CorrectedBits: 1}, nil
	case parityErr:
		// Odd number of errors with nonzero syndrome: treat as single.
		if int(synd) > s.n {
			return Result{Uncorrectable: true}, nil
		}
		if di := s.posToData[synd]; di >= 0 {
			flipBit(data, int(di))
		}
		// An error in a check-bit position needs no data repair.
		return Result{CorrectedBits: 1}, nil
	default:
		// Nonzero syndrome with matching parity: double error.
		return Result{Uncorrectable: true}, nil
	}
}

// Word72 is the conventional (72,64) SECDED code applied to one 64-bit
// word: 8 check bits per word, as in commodity ECC DIMMs. Eight of these
// protect a 64-byte line at word granularity (Fig. 6(i) of the paper).
type Word72 struct {
	inner *SECDED
}

// NewWord72 constructs the (72,64) code.
func NewWord72() (*Word72, error) {
	inner, err := NewSECDED(64)
	if err != nil {
		return nil, err
	}
	if inner.CheckBits() != 8 {
		return nil, fmt.Errorf("hamming: (72,64) check width = %d, want 8", inner.CheckBits())
	}
	return &Word72{inner: inner}, nil
}

// Encode returns the 8 check bits for one data word.
func (w *Word72) Encode(data uint64) uint8 {
	chk, err := w.inner.Encode([]uint64{data})
	if err != nil {
		// invariant: the slice length always matches.
		panic(err)
	}
	return uint8(chk)
}

// Decode verifies one word, returning the corrected word.
func (w *Word72) Decode(data uint64, check uint8) (uint64, Result) {
	buf := []uint64{data}
	res, err := w.inner.Decode(buf, uint64(check))
	if err != nil {
		// invariant: the slice length always matches.
		panic(err)
	}
	return buf[0], res
}
