package hamming

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCheckWidths(t *testing.T) {
	tests := []struct {
		dataBits, want int
	}{
		{64, 8},   // (72,64): the commodity DIMM code
		{512, 11}, // the MECC weak code (paper: "we would need 11 bits")
		{8, 5},
		{4, 4},
		{1, 3},
	}
	for _, tt := range tests {
		s, err := NewSECDED(tt.dataBits)
		if err != nil {
			t.Fatalf("NewSECDED(%d): %v", tt.dataBits, err)
		}
		if got := s.CheckBits(); got != tt.want {
			t.Errorf("CheckBits(%d data) = %d, want %d", tt.dataBits, got, tt.want)
		}
	}
}

func TestNewSECDEDRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -5, 5000} {
		if _, err := NewSECDED(n); err == nil {
			t.Errorf("NewSECDED(%d): want error", n)
		}
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	s, err := NewSECDED(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		data := make([]uint64, 8)
		for i := range data {
			data[i] = rng.Uint64()
		}
		chk, err := s.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		cp := append([]uint64(nil), data...)
		res, err := s.Decode(cp, chk)
		if err != nil {
			t.Fatal(err)
		}
		if res.Uncorrectable || res.CorrectedBits != 0 {
			t.Fatalf("clean decode: %+v", res)
		}
	}
}

func TestCorrectsEverySingleDataBit(t *testing.T) {
	s, err := NewSECDED(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := make([]uint64, 8)
	for i := range data {
		data[i] = rng.Uint64()
	}
	chk, err := s.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 512; pos++ {
		cp := append([]uint64(nil), data...)
		flipBit(cp, pos)
		res, err := s.Decode(cp, chk)
		if err != nil {
			t.Fatal(err)
		}
		if res.Uncorrectable || res.CorrectedBits != 1 {
			t.Fatalf("pos %d: res=%+v", pos, res)
		}
		for w := range data {
			if cp[w] != data[w] {
				t.Fatalf("pos %d: data word %d not repaired", pos, w)
			}
		}
	}
}

func TestCorrectsEverySingleCheckBit(t *testing.T) {
	s, err := NewSECDED(512)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]uint64, 8)
	data[0] = 0xfeedface
	chk, err := s.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < s.CheckBits(); b++ {
		cp := append([]uint64(nil), data...)
		res, err := s.Decode(cp, chk^(1<<b))
		if err != nil {
			t.Fatal(err)
		}
		if res.Uncorrectable || res.CorrectedBits != 1 {
			t.Fatalf("check bit %d: res=%+v", b, res)
		}
		for w := range data {
			if cp[w] != data[w] {
				t.Fatalf("check bit %d corrupted data", b)
			}
		}
	}
}

func TestDetectsDoubleErrors(t *testing.T) {
	s, err := NewSECDED(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := make([]uint64, 8)
	for i := range data {
		data[i] = rng.Uint64()
	}
	chk, err := s.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		a := rng.Intn(512)
		b := rng.Intn(512)
		if a == b {
			continue
		}
		cp := append([]uint64(nil), data...)
		flipBit(cp, a)
		flipBit(cp, b)
		res, err := s.Decode(cp, chk)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Uncorrectable {
			t.Fatalf("double error (%d,%d) not detected: %+v", a, b, res)
		}
	}
	// Mixed data+check double errors are detected too.
	for trial := 0; trial < 100; trial++ {
		cp := append([]uint64(nil), data...)
		flipBit(cp, rng.Intn(512))
		badChk := chk ^ (1 << rng.Intn(s.CheckBits()))
		res, err := s.Decode(cp, badChk)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Uncorrectable {
			t.Fatal("data+check double error not detected")
		}
	}
}

func TestDecodeInputValidation(t *testing.T) {
	s, err := NewSECDED(512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Encode(make([]uint64, 3)); err == nil {
		t.Error("Encode(short): want error")
	}
	if _, err := s.Decode(make([]uint64, 3), 0); err == nil {
		t.Error("Decode(short): want error")
	}
}

func TestWord72RoundTrip(t *testing.T) {
	w, err := NewWord72()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data uint64) bool {
		chk := w.Encode(data)
		got, res := w.Decode(data, chk)
		return got == data && !res.Uncorrectable && res.CorrectedBits == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Word72 corrects any single flipped data bit.
func TestWord72SingleBitProperty(t *testing.T) {
	w, err := NewWord72()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data uint64, pos uint8) bool {
		p := int(pos) % 64
		chk := w.Encode(data)
		got, res := w.Decode(data^(1<<p), chk)
		return got == data && res.CorrectedBits == 1 && !res.Uncorrectable
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Word72 detects any double data-bit error.
func TestWord72DoubleBitProperty(t *testing.T) {
	w, err := NewWord72()
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data uint64, p1, p2 uint8) bool {
		a, b := int(p1)%64, int(p2)%64
		if a == b {
			return true
		}
		chk := w.Encode(data)
		_, res := w.Decode(data^(1<<a)^(1<<b), chk)
		return res.Uncorrectable
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode512(b *testing.B) {
	s, err := NewSECDED(512)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]uint64, 8)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the word-parallel mask syndrome matches the bit-serial
// reference walk for every code size and random data.
func TestSyndromeWordParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dataBits := range []int{1, 7, 63, 64, 65, 100, 256, 511, 512, 1000, 4096} {
		s, err := NewSECDED(dataBits)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]uint64, s.wordsNeeded())
		for trial := 0; trial < 50; trial++ {
			for i := range data {
				data[i] = rng.Uint64()
			}
			fastSynd, fastOnes := s.syndromeOf(data)
			refSynd, refOnes := s.syndromeBitSerial(data)
			if fastSynd != refSynd || fastOnes != refOnes {
				t.Fatalf("dataBits=%d: word-parallel (synd=%#x ones=%d) != bit-serial (synd=%#x ones=%d)",
					dataBits, fastSynd, fastOnes, refSynd, refOnes)
			}
		}
	}
}

// Property: ScreenClean agrees with Decode's clean verdict for intact,
// single-error, and double-error words, junk above the check width
// included.
func TestScreenCleanMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dataBits := range []int{64, 512} {
		s, err := NewSECDED(dataBits)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]uint64, s.wordsNeeded())
		buf := make([]uint64, s.wordsNeeded())
		for trial := 0; trial < 200; trial++ {
			for i := range data {
				data[i] = rng.Uint64()
			}
			chk, err := s.Encode(data)
			if err != nil {
				t.Fatal(err)
			}
			// Junk above the stored width must be ignored.
			chk |= rng.Uint64() << uint(s.CheckBits())
			nflips := trial % 3
			for f := 0; f < nflips; f++ {
				flipBit(data, rng.Intn(dataBits))
			}
			copy(buf, data)
			res, err := s.Decode(buf, chk)
			if err != nil {
				t.Fatal(err)
			}
			clean := res == (Result{})
			if got := s.ScreenClean(data, chk); got != clean {
				t.Fatalf("dataBits=%d flips=%d: ScreenClean=%v, Decode clean=%v", dataBits, nflips, got, clean)
			}
		}
	}
	// Wrong input length screens as not clean.
	s, _ := NewSECDED(512)
	if s.ScreenClean(make([]uint64, 3), 0) {
		t.Fatal("short input screened clean")
	}
}

// The encode and screen kernels of the weak code are on the upgrade
// sweep's zero-allocation hot path.
func TestEncodeScreenZeroAllocs(t *testing.T) {
	s, err := NewSECDED(512)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]uint64, 8)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	chk, err := s.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := s.Encode(data); err != nil {
			t.Fatal(err)
		}
		if !s.ScreenClean(data, chk) {
			t.Fatal("clean word failed screen")
		}
	}); n != 0 {
		t.Fatalf("Encode+ScreenClean allocate %v times per run", n)
	}
}

// TestWrongLengthError pins the prebuilt length-mismatch error: it must
// wrap ErrBadInput for errors.Is, and — because it is built once at
// construction — firing the guard clause must not allocate, keeping
// Encode/Decode allocation-free on every path.
func TestWrongLengthError(t *testing.T) {
	s, err := NewSECDED(512)
	if err != nil {
		t.Fatal(err)
	}
	short := make([]uint64, 3) // wants 8 words

	if _, err := s.Encode(short); !errors.Is(err, ErrBadInput) {
		t.Fatalf("Encode(short) error = %v, want ErrBadInput", err)
	}
	if _, err := s.Decode(short, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("Decode(short) error = %v, want ErrBadInput", err)
	}

	if n := testing.AllocsPerRun(100, func() {
		if _, err := s.Encode(short); err == nil {
			t.Fatal("Encode(short) succeeded, want error")
		}
		if _, err := s.Decode(short, 0); err == nil {
			t.Fatal("Decode(short) succeeded, want error")
		}
	}); n != 0 {
		t.Fatalf("error path allocates %v times per run", n)
	}
}
