package gf2

import (
	"math/rand"
	"testing"
)

func randFPoly(rng *rand.Rand, f *Field, maxDeg int) FPoly {
	p := make(FPoly, rng.Intn(maxDeg+1)+1)
	for i := range p {
		p[i] = uint16(rng.Intn(f.Order() + 1))
	}
	return p
}

func TestFPolyBasics(t *testing.T) {
	p := NewFPoly(3, 0, 1) // x^2 + 3
	if p.Degree() != 2 || p.Coeff(0) != 3 || p.Coeff(1) != 0 || p.Coeff(5) != 0 {
		t.Errorf("basics: %v", p)
	}
	if (FPoly{}).Degree() != -1 || (FPoly{0, 0}).Degree() != -1 {
		t.Error("zero degree")
	}
	if got := NewFPoly(1, 2, 0, 0).Trim(); len(got) != 2 {
		t.Errorf("Trim = %v", got)
	}
	if !NewFPoly(1, 2).Equal(NewFPoly(1, 2, 0)) {
		t.Error("Equal should ignore trailing zeros")
	}
	if NewFPoly(1).Equal(NewFPoly(2)) {
		t.Error("Equal false negative")
	}
}

func TestFPolyArithmetic(t *testing.T) {
	f := mustField(t, 4)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := randFPoly(rng, f, 6)
		b := randFPoly(rng, f, 6)
		c := randFPoly(rng, f, 6)
		// Commutativity and distributivity at a random point: checking
		// polynomial identities by evaluation (a field has no zero
		// divisors, so equality at enough points means equality).
		x := uint16(rng.Intn(f.Order() + 1))
		ab := a.Mul(f, b)
		if !ab.Equal(b.Mul(f, a)) {
			t.Fatal("Mul not commutative")
		}
		lhs := a.Mul(f, b.Add(c)).Eval(f, x)
		rhs := ab.Eval(f, x) ^ a.Mul(f, c).Eval(f, x)
		if lhs != rhs {
			t.Fatal("distributivity fails")
		}
		// Eval is a homomorphism.
		if ab.Eval(f, x) != f.Mul(a.Eval(f, x), b.Eval(f, x)) {
			t.Fatal("Eval not multiplicative")
		}
		if a.Add(b).Eval(f, x) != a.Eval(f, x)^b.Eval(f, x) {
			t.Fatal("Eval not additive")
		}
	}
}

func TestFPolyScaleAndMulX(t *testing.T) {
	f := mustField(t, 4)
	p := NewFPoly(1, 2, 3)
	s := p.Scale(f, 5)
	for i := range p {
		if s[i] != f.Mul(p[i], 5) {
			t.Fatal("Scale wrong")
		}
	}
	mx := p.MulX(2)
	if mx.Degree() != 4 || mx.Coeff(2) != 1 || mx.Coeff(0) != 0 {
		t.Errorf("MulX = %v", mx)
	}
	if (FPoly{}).MulX(3) != nil {
		t.Error("zero MulX")
	}
}

func TestFPolyDerivative(t *testing.T) {
	// d/dx (a + bx + cx^2 + dx^3) = b + dx^2 in characteristic 2.
	p := NewFPoly(7, 5, 9, 3)
	d := p.Derivative()
	if !d.Equal(NewFPoly(5, 0, 3)) {
		t.Errorf("Derivative = %v", d)
	}
	if NewFPoly(4).Derivative() != nil {
		t.Error("constant derivative should be zero")
	}
}

func TestFPolyRoots(t *testing.T) {
	f := mustField(t, 6)
	// Construct (x - alpha^3)(x - alpha^17)(x - alpha^40) and recover
	// the roots.
	want := []int{3, 17, 40}
	p := NewFPoly(1)
	for _, e := range want {
		p = p.Mul(f, NewFPoly(f.Alpha(e), 1))
	}
	got := p.MonicRoots(f)
	if len(got) != 3 {
		t.Fatalf("roots = %v", got)
	}
	seen := map[int]bool{}
	for _, r := range got {
		seen[r] = true
	}
	for _, e := range want {
		if !seen[e] {
			t.Errorf("missing root alpha^%d", e)
		}
	}
	if NewFPoly(5).MonicRoots(f) != nil {
		t.Error("constant has no roots")
	}
}

func TestFPolyString(t *testing.T) {
	if got := (FPoly{}).String(); got != "0" {
		t.Errorf("zero string = %q", got)
	}
	if got := NewFPoly(3, 1, 1).String(); got != "x^2 + x + 3" {
		t.Errorf("string = %q", got)
	}
	if got := NewFPoly(0, 2).String(); got != "2·x" {
		t.Errorf("string = %q", got)
	}
}
