// Package gf2 implements arithmetic over binary Galois fields GF(2^m) and
// polynomials over GF(2), the algebraic substrate for the BCH codes MECC
// uses as its strong ECC (Section III-E of the paper).
//
// Fields are represented with log/antilog tables built from a primitive
// polynomial, which makes multiply/divide/inverse O(1) — the Go analogue of
// the XOR-tree hardware the paper budgets gates for.
package gf2

import (
	"errors"
	"fmt"
)

// Errors returned by field construction and arithmetic.
var (
	ErrBadM         = errors.New("gf2: m must be in [2,16]")
	ErrNotPrimitive = errors.New("gf2: polynomial is not primitive")
	ErrDivByZero    = errors.New("gf2: division by zero")
)

// defaultPrimitive maps m to a conventional primitive polynomial for
// GF(2^m), given as a bit mask including the x^m term. These are the
// standard choices tabulated in Lin & Costello.
var defaultPrimitive = map[int]uint32{
	2:  0x7,     // x^2+x+1
	3:  0xb,     // x^3+x+1
	4:  0x13,    // x^4+x+1
	5:  0x25,    // x^5+x^2+1
	6:  0x43,    // x^6+x+1
	7:  0x89,    // x^7+x^3+1
	8:  0x11d,   // x^8+x^4+x^3+x^2+1
	9:  0x211,   // x^9+x^4+1
	10: 0x409,   // x^10+x^3+1
	11: 0x805,   // x^11+x^2+1
	12: 0x1053,  // x^12+x^6+x^4+x+1
	13: 0x201b,  // x^13+x^4+x^3+x+1
	14: 0x4443,  // x^14+x^10+x^6+x+1
	15: 0x8003,  // x^15+x+1
	16: 0x1100b, // x^16+x^12+x^3+x+1
}

// Field is GF(2^m) with precomputed log and antilog tables. It is
// immutable after construction and safe for concurrent use.
type Field struct {
	m    int
	n    int // 2^m - 1, the multiplicative group order
	poly uint32
	exp  []uint16 // exp[i] = alpha^i, length 2n so indexing needs no mod
	log  []int    // log[x] = i such that alpha^i = x; log[0] unused
}

// NewField constructs GF(2^m) using the conventional primitive polynomial.
func NewField(m int) (*Field, error) {
	p, ok := defaultPrimitive[m]
	if !ok {
		return nil, fmt.Errorf("%w: m=%d", ErrBadM, m)
	}
	return NewFieldPoly(m, p)
}

// NewFieldPoly constructs GF(2^m) from an explicit primitive polynomial,
// given as a bit mask that must include the x^m term.
func NewFieldPoly(m int, poly uint32) (*Field, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("%w: m=%d", ErrBadM, m)
	}
	if poly>>uint(m) != 1 {
		return nil, fmt.Errorf("%w: polynomial %#x lacks the x^%d term", ErrNotPrimitive, poly, m)
	}
	n := (1 << uint(m)) - 1
	f := &Field{
		m:    m,
		n:    n,
		poly: poly,
		exp:  make([]uint16, 2*n),
		log:  make([]int, n+1),
	}
	x := uint32(1)
	for i := 0; i < n; i++ {
		if x == 1 && i != 0 {
			// alpha's order divides i < n: not primitive.
			return nil, fmt.Errorf("%w: %#x (order %d < %d)", ErrNotPrimitive, poly, i, n)
		}
		f.exp[i] = uint16(x)
		f.log[x] = i
		x <<= 1
		if x>>uint(m) == 1 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("%w: %#x (alpha^%d != 1)", ErrNotPrimitive, poly, n)
	}
	copy(f.exp[n:], f.exp[:n])
	return f, nil
}

// M returns the field degree m.
func (f *Field) M() int { return f.m }

// Order returns 2^m - 1, the order of the multiplicative group.
func (f *Field) Order() int { return f.n }

// Poly returns the primitive polynomial mask used to build the field.
func (f *Field) Poly() uint32 { return f.poly }

// Alpha returns alpha^i for any integer i >= 0.
func (f *Field) Alpha(i int) uint16 { return f.exp[i%f.n] }

// Log returns the discrete log of x (x != 0).
func (f *Field) Log(x uint16) (int, error) {
	if x == 0 || int(x) > f.n {
		return 0, fmt.Errorf("gf2: log of %d undefined", x)
	}
	return f.log[x], nil
}

// Add returns a + b (XOR in characteristic 2).
func (f *Field) Add(a, b uint16) uint16 { return a ^ b }

// Mul returns a * b.
func (f *Field) Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Div returns a / b, or an error if b == 0.
func (f *Field) Div(a, b uint16) (uint16, error) {
	if b == 0 {
		return 0, ErrDivByZero
	}
	if a == 0 {
		return 0, nil
	}
	return f.exp[f.log[a]-f.log[b]+f.n], nil
}

// Inv returns the multiplicative inverse of a, or an error if a == 0.
func (f *Field) Inv(a uint16) (uint16, error) {
	if a == 0 {
		return 0, ErrDivByZero
	}
	return f.exp[f.n-f.log[a]], nil
}

// Pow returns a^e for e >= 0 (0^0 == 1 by convention).
func (f *Field) Pow(a uint16, e int) uint16 {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return f.exp[(f.log[a]*e)%f.n]
}

// MulTable returns the dense multiplication table of a fixed element:
// tbl[x] = a*x for every field element x in [0, 2^m). A constant-factor
// multiply becomes one bounds-checked load with no zero tests or log
// lookups — the primitive behind the fused multi-syndrome Horner pass in
// internal/bch. The table is freshly allocated and owned by the caller.
func (f *Field) MulTable(a uint16) []uint16 {
	tbl := make([]uint16, f.n+1)
	if a == 0 {
		return tbl
	}
	la := f.log[a]
	for x := 1; x <= f.n; x++ {
		tbl[x] = f.exp[la+f.log[x]]
	}
	return tbl
}

// Eval evaluates the polynomial p (coefficients over GF(2^m), p[i] is the
// coefficient of x^i) at the point x, using Horner's rule.
func (f *Field) Eval(p []uint16, x uint16) uint16 {
	var acc uint16
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ p[i]
	}
	return acc
}
