package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoly(rng *rand.Rand, maxDeg int) Poly2 {
	var p Poly2
	d := rng.Intn(maxDeg + 1)
	for i := 0; i <= d; i++ {
		if rng.Intn(2) == 1 {
			p = p.SetCoeff(i, 1)
		}
	}
	return p
}

func TestPolyDegree(t *testing.T) {
	tests := []struct {
		p    Poly2
		want int
	}{
		{nil, -1},
		{Poly2{0}, -1},
		{NewPoly2(0), 0},
		{NewPoly2(5), 5},
		{NewPoly2(0, 64), 64},
		{NewPoly2(127, 3), 127},
	}
	for _, tt := range tests {
		if got := tt.p.Degree(); got != tt.want {
			t.Errorf("Degree(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestPolyString(t *testing.T) {
	tests := []struct {
		p    Poly2
		want string
	}{
		{nil, "0"},
		{NewPoly2(0), "1"},
		{NewPoly2(1), "x"},
		{NewPoly2(10, 3, 0), "x^10 + x^3 + 1"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestPolyMulKnown(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2).
	a := NewPoly2(1, 0)
	if got := a.Mul(a); !got.Equal(NewPoly2(2, 0)) {
		t.Errorf("(x+1)^2 = %v, want x^2+1", got)
	}
	// (x^2+x+1)(x+1) = x^3+1.
	b := NewPoly2(2, 1, 0)
	if got := b.Mul(NewPoly2(1, 0)); !got.Equal(NewPoly2(3, 0)) {
		t.Errorf("got %v, want x^3+1", got)
	}
}

func TestDivModKnown(t *testing.T) {
	// x^3+1 divided by x+1 is x^2+x+1 rem 0.
	q, r, err := NewPoly2(3, 0).DivMod(NewPoly2(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Equal(NewPoly2(2, 1, 0)) || r.Degree() != -1 {
		t.Errorf("got q=%v r=%v", q, r)
	}
	// Division by zero errors.
	if _, _, err := NewPoly2(3).DivMod(nil); err == nil {
		t.Error("DivMod by zero: want error")
	}
}

// Property: a = q*b + r with deg(r) < deg(b).
func TestDivModProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randPoly(rng, 200)
		b := randPoly(rng, 80)
		if b.Degree() < 0 {
			continue
		}
		q, r, err := a.DivMod(b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Degree() >= b.Degree() {
			t.Fatalf("deg(r)=%d >= deg(b)=%d", r.Degree(), b.Degree())
		}
		recon := q.Mul(b).Add(r)
		if q.Degree() < 0 {
			recon = r
		}
		if !recon.Equal(a) {
			t.Fatalf("q*b+r != a\n a=%v\n q=%v\n b=%v\n r=%v", a, q, b, r)
		}
	}
}

// Property: multiplication is commutative and distributes over addition.
func TestMulProperties(t *testing.T) {
	prop := func(sa, sb, sc uint64) bool {
		a, b, c := Poly2{sa}, Poly2{sb}, Poly2{sc}
		if !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestShift(t *testing.T) {
	p := NewPoly2(5, 0)
	if got := p.Shift(70); !got.Equal(NewPoly2(75, 70)) {
		t.Errorf("Shift(70) = %v", got)
	}
	if got := (Poly2)(nil).Shift(3); got.Degree() != -1 {
		t.Errorf("Shift of zero poly = %v", got)
	}
}

func TestGCDAndLCM(t *testing.T) {
	// gcd(x^3+1, x^2+1): x^3+1=(x+1)(x^2+x+1), x^2+1=(x+1)^2 -> gcd x+1.
	g := GCD2(NewPoly2(3, 0), NewPoly2(2, 0))
	if !g.Equal(NewPoly2(1, 0)) {
		t.Errorf("GCD = %v, want x+1", g)
	}
	// lcm(x+1, x^2+x+1) = x^3+1.
	l := LCM2(NewPoly2(1, 0), NewPoly2(2, 1, 0))
	if !l.Equal(NewPoly2(3, 0)) {
		t.Errorf("LCM = %v, want x^3+1", l)
	}
	// LCM of coprime polys is their product.
	a, b := NewPoly2(4, 1, 0), NewPoly2(3, 1, 0)
	if g := GCD2(a, b); g.Degree() == 0 {
		if got := LCM2(a, b); !got.Equal(a.Mul(b)) {
			t.Errorf("LCM of coprime = %v, want product", got)
		}
	}
}

func TestMinimalPolyGF16(t *testing.T) {
	f := mustField(t, 4)
	// Known minimal polynomials for GF(16) with x^4+x+1 (Lin & Costello
	// Table 2.9): m1 = x^4+x+1, m3 = x^4+x^3+x^2+x+1, m5 = x^2+x+1,
	// m7 = x^4+x^3+1.
	tests := []struct {
		i    int
		want Poly2
	}{
		{1, NewPoly2(4, 1, 0)},
		{3, NewPoly2(4, 3, 2, 1, 0)},
		{5, NewPoly2(2, 1, 0)},
		{7, NewPoly2(4, 3, 0)},
	}
	for _, tt := range tests {
		if got := f.MinimalPoly(tt.i); !got.Equal(tt.want) {
			t.Errorf("MinimalPoly(%d) = %v, want %v", tt.i, got, tt.want)
		}
	}
}

// Property: the minimal polynomial of alpha^i has alpha^i as a root when
// lifted to GF(2^m), and divides x^n + 1.
func TestMinimalPolyRootAndDivides(t *testing.T) {
	f := mustField(t, 10)
	xn1 := NewPoly2(f.Order(), 0)
	for _, i := range []int{1, 3, 5, 7, 9, 11, 33, 341} {
		mp := f.MinimalPoly(i)
		// Evaluate over GF(2^m): coefficients are 0/1.
		coeffs := make([]uint16, mp.Degree()+1)
		for k := range coeffs {
			coeffs[k] = uint16(mp.Coeff(k))
		}
		if v := f.Eval(coeffs, f.Alpha(i)); v != 0 {
			t.Errorf("minpoly(%d) does not vanish at alpha^%d (got %d)", i, i, v)
		}
		if _, r, err := xn1.DivMod(mp); err != nil || r.Degree() != -1 {
			t.Errorf("minpoly(%d) does not divide x^n+1 (rem %v, err %v)", i, r, err)
		}
	}
}

func TestWeight(t *testing.T) {
	if got := NewPoly2(10, 3, 0).Weight(); got != 3 {
		t.Errorf("Weight = %d, want 3", got)
	}
}

func TestPoly2FromMask(t *testing.T) {
	if !Poly2FromMask(0x409).Equal(NewPoly2(10, 3, 0)) {
		t.Error("Poly2FromMask(0x409) mismatch")
	}
	if Poly2FromMask(0) != nil {
		t.Error("Poly2FromMask(0) should be nil")
	}
}
