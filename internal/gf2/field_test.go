package gf2

import (
	"testing"
	"testing/quick"
)

func mustField(t *testing.T, m int) *Field {
	t.Helper()
	f, err := NewField(m)
	if err != nil {
		t.Fatalf("NewField(%d): %v", m, err)
	}
	return f
}

func TestNewFieldAllM(t *testing.T) {
	for m := 2; m <= 16; m++ {
		f := mustField(t, m)
		if f.Order() != (1<<m)-1 {
			t.Errorf("m=%d: order %d, want %d", m, f.Order(), (1<<m)-1)
		}
	}
}

func TestNewFieldRejectsBadM(t *testing.T) {
	for _, m := range []int{-1, 0, 1, 17, 99} {
		if _, err := NewField(m); err == nil {
			t.Errorf("NewField(%d): want error", m)
		}
	}
}

func TestNewFieldPolyRejectsNonPrimitive(t *testing.T) {
	// x^4+1 = (x+1)^4 is not even irreducible.
	if _, err := NewFieldPoly(4, 0x11); err == nil {
		t.Error("NewFieldPoly(4, x^4+1): want error")
	}
	// x^4+x^3+x^2+x+1 is irreducible but not primitive (order 5).
	if _, err := NewFieldPoly(4, 0x1f); err == nil {
		t.Error("NewFieldPoly(4, x^4+x^3+x^2+x+1): want error")
	}
	// Missing the x^m term.
	if _, err := NewFieldPoly(4, 0x7); err == nil {
		t.Error("NewFieldPoly(4, x^2+x+1): want error")
	}
}

func TestMulDivInverse(t *testing.T) {
	f := mustField(t, 8)
	n := f.Order()
	for a := 1; a <= n; a++ {
		inv, err := f.Inv(uint16(a))
		if err != nil {
			t.Fatalf("Inv(%d): %v", a, err)
		}
		if got := f.Mul(uint16(a), inv); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d, want 1", got, a)
		}
	}
	if _, err := f.Inv(0); err == nil {
		t.Error("Inv(0): want error")
	}
	if _, err := f.Div(5, 0); err == nil {
		t.Error("Div(_,0): want error")
	}
	q, err := f.Div(0, 7)
	if err != nil || q != 0 {
		t.Errorf("Div(0,7) = %d,%v; want 0,nil", q, err)
	}
}

// Field axioms checked exhaustively on a small field and by sampling on a
// larger one.
func TestFieldAxiomsExhaustiveGF16(t *testing.T) {
	f := mustField(t, 4)
	n := uint16(f.Order())
	for a := uint16(0); a <= n; a++ {
		for b := uint16(0); b <= n; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("commutativity fails at %d,%d", a, b)
			}
			for c := uint16(0); c <= n; c++ {
				if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
					t.Fatalf("associativity fails at %d,%d,%d", a, b, c)
				}
				if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestFieldAxiomsQuickGF1024(t *testing.T) {
	f := mustField(t, 10)
	n := uint16(f.Order())
	prop := func(a, b, c uint16) bool {
		a, b, c = a%(n+1), b%(n+1), c%(n+1)
		return f.Mul(a, f.Mul(b, c)) == f.Mul(f.Mul(a, b), c) &&
			f.Mul(a, b^c) == f.Mul(a, b)^f.Mul(a, c) &&
			f.Mul(a, 1) == a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	f := mustField(t, 10)
	a := f.Alpha(1)
	acc := uint16(1)
	for e := 0; e < 40; e++ {
		if got := f.Pow(a, e); got != acc {
			t.Fatalf("Pow(alpha,%d) = %d, want %d", e, got, acc)
		}
		acc = f.Mul(acc, a)
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 != 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 != 0")
	}
}

func TestAlphaOrder(t *testing.T) {
	f := mustField(t, 10)
	if f.Alpha(f.Order()) != 1 {
		t.Error("alpha^n != 1")
	}
	seen := make(map[uint16]bool)
	for i := 0; i < f.Order(); i++ {
		v := f.Alpha(i)
		if seen[v] {
			t.Fatalf("alpha^%d = %d repeats", i, v)
		}
		seen[v] = true
	}
}

func TestMulTableMatchesMul(t *testing.T) {
	for _, m := range []int{4, 8, 10} {
		f, err := NewField(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range []uint16{0, 1, 2, f.Alpha(7), f.Alpha(f.Order() - 1), uint16(f.Order())} {
			tbl := f.MulTable(a)
			if len(tbl) != f.Order()+1 {
				t.Fatalf("m=%d a=%d: table length %d, want %d", m, a, len(tbl), f.Order()+1)
			}
			for x := 0; x <= f.Order(); x++ {
				if got, want := tbl[x], f.Mul(a, uint16(x)); got != want {
					t.Fatalf("m=%d: MulTable(%d)[%d] = %d, want %d", m, a, x, got, want)
				}
			}
		}
	}
}

func TestEvalHorner(t *testing.T) {
	f := mustField(t, 4)
	// p(x) = 3 + 5x + x^2 over GF(16), evaluate at a few points against a
	// naive power-sum computation.
	p := []uint16{3, 5, 1}
	for x := uint16(0); x <= uint16(f.Order()); x++ {
		want := uint16(3) ^ f.Mul(5, x) ^ f.Mul(x, x)
		if got := f.Eval(p, x); got != want {
			t.Fatalf("Eval at %d = %d, want %d", x, got, want)
		}
	}
}

func TestLog(t *testing.T) {
	f := mustField(t, 6)
	for i := 0; i < f.Order(); i++ {
		got, err := f.Log(f.Alpha(i))
		if err != nil {
			t.Fatalf("Log: %v", err)
		}
		if got != i {
			t.Fatalf("Log(alpha^%d) = %d", i, got)
		}
	}
	if _, err := f.Log(0); err == nil {
		t.Error("Log(0): want error")
	}
}

func BenchmarkMulGF1024(b *testing.B) {
	f, err := NewField(10)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = f.Mul(uint16(i%1023+1), 777)
	}
}
