package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

// Poly2 is a polynomial over GF(2), stored as a little-endian bit vector:
// word w bit b is the coefficient of x^(64w+b). The zero polynomial is an
// empty or all-zero slice. Poly2 values are treated as immutable; all
// operations return fresh slices.
type Poly2 []uint64

// NewPoly2 builds a polynomial from the exponents of its nonzero terms.
func NewPoly2(exponents ...int) Poly2 {
	var p Poly2
	for _, e := range exponents {
		p = p.SetCoeff(e, 1)
	}
	return p
}

// Poly2FromMask converts a small bit-mask polynomial (bit i = coeff of x^i).
func Poly2FromMask(mask uint32) Poly2 {
	if mask == 0 {
		return nil
	}
	return Poly2{uint64(mask)}
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly2) Degree() int {
	for w := len(p) - 1; w >= 0; w-- {
		if p[w] != 0 {
			return w*64 + 63 - bits.LeadingZeros64(p[w])
		}
	}
	return -1
}

// Coeff returns the coefficient of x^i.
func (p Poly2) Coeff(i int) uint {
	w := i >> 6
	if w >= len(p) {
		return 0
	}
	return uint(p[w]>>(uint(i)&63)) & 1
}

// SetCoeff returns a copy of p with the coefficient of x^i set to v.
func (p Poly2) SetCoeff(i int, v uint) Poly2 {
	w := i >> 6
	out := make(Poly2, max(len(p), w+1))
	copy(out, p)
	mask := uint64(1) << (uint(i) & 63)
	if v&1 == 1 {
		out[w] |= mask
	} else {
		out[w] &^= mask
	}
	return out
}

// Add returns p + q (XOR).
func (p Poly2) Add(q Poly2) Poly2 {
	out := make(Poly2, max(len(p), len(q)))
	copy(out, p)
	for w := range q {
		out[w] ^= q[w]
	}
	return out
}

// Shift returns p * x^k for k >= 0.
func (p Poly2) Shift(k int) Poly2 {
	d := p.Degree()
	if d < 0 {
		return nil
	}
	out := make(Poly2, (d+k)/64+1)
	wordShift, bitShift := k/64, uint(k%64)
	for w := len(p) - 1; w >= 0; w-- {
		if p[w] == 0 {
			continue
		}
		out[w+wordShift] ^= p[w] << bitShift
		if bitShift != 0 && w+wordShift+1 < len(out) {
			out[w+wordShift+1] ^= p[w] >> (64 - bitShift)
		}
	}
	return out
}

// Mul returns p * q over GF(2).
func (p Poly2) Mul(q Poly2) Poly2 {
	dp, dq := p.Degree(), q.Degree()
	if dp < 0 || dq < 0 {
		return nil
	}
	out := make(Poly2, (dp+dq)/64+1)
	for i := 0; i <= dp; i++ {
		if p.Coeff(i) == 0 {
			continue
		}
		wordShift, bitShift := i/64, uint(i%64)
		for w := range q {
			if q[w] == 0 {
				continue
			}
			out[w+wordShift] ^= q[w] << bitShift
			if bitShift != 0 && w+wordShift+1 < len(out) {
				out[w+wordShift+1] ^= q[w] >> (64 - bitShift)
			}
		}
	}
	return out
}

// DivMod returns the quotient and remainder of p / q. It panics only for a
// zero divisor, which is reported as an error instead.
func (p Poly2) DivMod(q Poly2) (quot, rem Poly2, err error) {
	dq := q.Degree()
	if dq < 0 {
		return nil, nil, fmt.Errorf("gf2: polynomial %w", ErrDivByZero)
	}
	rem = make(Poly2, len(p))
	copy(rem, p)
	dr := rem.Degree()
	if dr < dq {
		return nil, rem, nil
	}
	quot = make(Poly2, dr/64+1)
	for dr >= dq {
		k := dr - dq
		quot[k>>6] |= 1 << (uint(k) & 63)
		// rem -= q << k, done in place.
		wordShift, bitShift := k/64, uint(k%64)
		for w := 0; w*64 <= dq; w++ {
			if q[w] == 0 {
				continue
			}
			rem[w+wordShift] ^= q[w] << bitShift
			if bitShift != 0 && w+wordShift+1 < len(rem) {
				rem[w+wordShift+1] ^= q[w] >> (64 - bitShift)
			}
		}
		dr = rem.Degree()
	}
	return quot, rem, nil
}

// Mod returns p mod q.
func (p Poly2) Mod(q Poly2) (Poly2, error) {
	_, rem, err := p.DivMod(q)
	return rem, err
}

// Equal reports whether p and q denote the same polynomial.
func (p Poly2) Equal(q Poly2) bool {
	n := max(len(p), len(q))
	for w := 0; w < n; w++ {
		var a, b uint64
		if w < len(p) {
			a = p[w]
		}
		if w < len(q) {
			b = q[w]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Weight returns the number of nonzero coefficients.
func (p Poly2) Weight() int {
	n := 0
	for _, w := range p {
		n += bits.OnesCount64(w)
	}
	return n
}

// String renders the polynomial as a sum of monomials, highest degree first.
func (p Poly2) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	var terms []string
	for i := d; i >= 0; i-- {
		if p.Coeff(i) == 0 {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, "1")
		case 1:
			terms = append(terms, "x")
		default:
			terms = append(terms, fmt.Sprintf("x^%d", i))
		}
	}
	return strings.Join(terms, " + ")
}

// MinimalPoly returns the minimal polynomial over GF(2) of alpha^i in f:
// the product of (x - alpha^j) over the cyclotomic coset of i.
func (f *Field) MinimalPoly(i int) Poly2 {
	n := f.Order()
	i %= n
	// Collect the cyclotomic coset {i, 2i, 4i, ...} mod n.
	coset := []int{i}
	for j := (i * 2) % n; j != i; j = (j * 2) % n {
		coset = append(coset, j)
	}
	// Multiply (x + alpha^j) factors over GF(2^m); the product of a full
	// conjugate set is guaranteed to have 0/1 coefficients.
	prod := NewFPoly(1)
	for _, j := range coset {
		prod = prod.Mul(f, NewFPoly(f.Alpha(j), 1))
	}
	var out Poly2
	for k, c := range prod {
		if c == 1 {
			out = out.SetCoeff(k, 1)
		} else if c != 0 {
			// invariant: a minimal polynomial over GF(2) has binary coefficients.
			panic(fmt.Sprintf("gf2: minimal polynomial of alpha^%d has non-binary coefficient %d", i, c))
		}
	}
	return out
}

// LCM2 returns the least common multiple of binary polynomials, computed by
// repeated GCD. A zero input yields the zero polynomial.
func LCM2(ps ...Poly2) Poly2 {
	if len(ps) == 0 {
		return NewPoly2(0)
	}
	acc := ps[0]
	for _, p := range ps[1:] {
		if acc.Degree() < 0 || p.Degree() < 0 {
			return nil
		}
		g := GCD2(acc, p)
		q, _, err := acc.Mul(p).DivMod(g)
		if err != nil {
			// invariant: g divides acc*p and is nonzero.
			panic(err)
		}
		acc = q
	}
	return acc
}

// GCD2 returns the greatest common divisor of two binary polynomials.
func GCD2(a, b Poly2) Poly2 {
	for b.Degree() >= 0 {
		_, r, err := a.DivMod(b)
		if err != nil {
			// invariant: loop condition guarantees b != 0.
			panic(err)
		}
		a, b = b, r
	}
	return a
}
