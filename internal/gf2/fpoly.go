package gf2

import (
	"fmt"
	"strings"
)

// FPoly is a polynomial with coefficients in GF(2^m): coefficient of x^i
// at index i. The zero polynomial is an empty (or all-zero) slice.
// Operations take the field explicitly and return fresh slices; FPoly
// values are treated as immutable.
type FPoly []uint16

// NewFPoly builds a polynomial from its coefficients (index = degree).
func NewFPoly(coeffs ...uint16) FPoly {
	out := make(FPoly, len(coeffs))
	copy(out, coeffs)
	return out
}

// Degree returns the degree, or -1 for the zero polynomial.
func (p FPoly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Coeff returns the coefficient of x^i (zero beyond the stored length).
func (p FPoly) Coeff(i int) uint16 {
	if i < 0 || i >= len(p) {
		return 0
	}
	return p[i]
}

// Trim drops high zero coefficients.
func (p FPoly) Trim() FPoly {
	return p[:p.Degree()+1]
}

// Equal reports whether two polynomials are identical (ignoring trailing
// zeros).
func (p FPoly) Equal(q FPoly) bool {
	d := p.Degree()
	if d != q.Degree() {
		return false
	}
	for i := 0; i <= d; i++ {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + q (coefficient-wise XOR in characteristic 2).
func (p FPoly) Add(q FPoly) FPoly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(FPoly, n)
	copy(out, p)
	for i, c := range q {
		out[i] ^= c
	}
	return out
}

// Scale returns c * p.
func (p FPoly) Scale(f *Field, c uint16) FPoly {
	out := make(FPoly, len(p))
	for i, pc := range p {
		out[i] = f.Mul(pc, c)
	}
	return out
}

// MulX returns p * x^k.
func (p FPoly) MulX(k int) FPoly {
	if p.Degree() < 0 {
		return nil
	}
	out := make(FPoly, len(p)+k)
	copy(out[k:], p)
	return out
}

// Mul returns p * q over the field.
func (p FPoly) Mul(f *Field, q FPoly) FPoly {
	dp, dq := p.Degree(), q.Degree()
	if dp < 0 || dq < 0 {
		return nil
	}
	out := make(FPoly, dp+dq+1)
	for i := 0; i <= dp; i++ {
		if p[i] == 0 {
			continue
		}
		for j := 0; j <= dq; j++ {
			out[i+j] ^= f.Mul(p[i], q[j])
		}
	}
	return out
}

// Eval evaluates p at x by Horner's rule.
func (p FPoly) Eval(f *Field, x uint16) uint16 {
	return f.Eval(p, x)
}

// Derivative returns the formal derivative: in characteristic 2, even-
// power terms vanish and odd powers keep their coefficient one degree
// down.
func (p FPoly) Derivative() FPoly {
	if len(p) <= 1 {
		return nil
	}
	out := make(FPoly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out
}

// MonicRoots finds all roots of p among the nonzero field elements by
// exhaustive Chien-style search, returned as exponents of alpha.
func (p FPoly) MonicRoots(f *Field) []int {
	var roots []int
	if p.Degree() < 1 {
		return nil
	}
	for e := 0; e < f.Order(); e++ {
		if p.Eval(f, f.Alpha(e)) == 0 {
			roots = append(roots, e)
		}
	}
	return roots
}

// String renders the polynomial for diagnostics.
func (p FPoly) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	var terms []string
	for i := d; i >= 0; i-- {
		c := p[i]
		if c == 0 {
			continue
		}
		switch {
		case i == 0:
			terms = append(terms, fmt.Sprintf("%d", c))
		case i == 1 && c == 1:
			terms = append(terms, "x")
		case i == 1:
			terms = append(terms, fmt.Sprintf("%d·x", c))
		case c == 1:
			terms = append(terms, fmt.Sprintf("x^%d", i))
		default:
			terms = append(terms, fmt.Sprintf("%d·x^%d", c, i))
		}
	}
	return strings.Join(terms, " + ")
}
