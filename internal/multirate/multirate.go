// Package multirate implements the retention-aware refresh baselines the
// paper compares against in Section VII — RAIDR-style multi-rate row
// binning, RAPID-style retention-aware page allocation, Flikker-style
// critical/non-critical partitioning, and SECRET-style per-cell error
// patching — together with the failure mode that undermines all
// profiling-based schemes: Variable Retention Time (VRT), where a cell's
// retention degrades after it was profiled. MECC needs no profile, so
// VRT cells are just more random failures inside its ECC-6 budget.
package multirate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/retention"
)

// Errors returned by profile and scheme construction.
var (
	ErrBadBins    = errors.New("multirate: bins must be increasing multiples of the base period")
	ErrBadProfile = errors.New("multirate: invalid profile parameters")
)

// RowProfile holds the profiled minimum retention time per row — what an
// offline RAIDR/RAPID/SECRET characterization pass would measure.
type RowProfile struct {
	// MinRetention[r] is row r's weakest-cell retention time.
	MinRetention []time.Duration
}

// SampleRowProfile draws a synthetic retention profile for nRows rows of
// cellsPerRow cells from the retention model: the row minimum follows
// P(min < T) = 1 - (1 - BER(T))^cells, sampled by inverse transform.
func SampleRowProfile(model *retention.Model, nRows, cellsPerRow int, seed int64) (*RowProfile, error) {
	if nRows <= 0 || cellsPerRow <= 0 {
		return nil, fmt.Errorf("%w: rows=%d cells=%d", ErrBadProfile, nRows, cellsPerRow)
	}
	rng := rand.New(rand.NewSource(seed))
	p := &RowProfile{MinRetention: make([]time.Duration, nRows)}
	for r := range p.MinRetention {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		// Solve 1-(1-BER(T))^n = u  =>  BER(T) = 1-(1-u)^(1/n), then
		// invert the power-law BER model.
		ber := 1 - math.Pow(1-u, 1/float64(cellsPerRow))
		p.MinRetention[r] = model.PeriodFor(ber)
	}
	return p, nil
}

// RAIDR bins rows by profiled retention and refreshes each bin at the
// longest safe period (Liu et al., ISCA'12). No ECC: correctness relies
// entirely on the profile staying true.
type RAIDR struct {
	bins   []time.Duration
	rowBin []int
}

// NewRAIDR assigns every row the longest bin period not exceeding its
// profiled minimum retention (with the mandatory fallback to bins[0],
// the JEDEC period, for rows weaker than any relaxed bin).
func NewRAIDR(profile *RowProfile, bins []time.Duration) (*RAIDR, error) {
	if len(bins) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 bins", ErrBadBins)
	}
	if !sort.SliceIsSorted(bins, func(i, j int) bool { return bins[i] < bins[j] }) {
		return nil, fmt.Errorf("%w: not sorted", ErrBadBins)
	}
	r := &RAIDR{bins: bins, rowBin: make([]int, len(profile.MinRetention))}
	for row, ret := range profile.MinRetention {
		bin := 0
		for b := len(bins) - 1; b > 0; b-- {
			if ret >= bins[b] {
				bin = b
				break
			}
		}
		r.rowBin[row] = bin
	}
	return r, nil
}

// BinCounts returns how many rows landed in each bin.
func (r *RAIDR) BinCounts() []int {
	counts := make([]int, len(r.bins))
	for _, b := range r.rowBin {
		counts[b]++
	}
	return counts
}

// RefreshRateNorm returns the scheme's refresh-operation rate relative
// to refreshing everything at bins[0].
func (r *RAIDR) RefreshRateNorm() float64 {
	base := r.bins[0].Seconds()
	var sum float64
	for _, b := range r.rowBin {
		sum += base / r.bins[b].Seconds()
	}
	return sum / float64(len(r.rowBin))
}

// RowPeriod returns the refresh period assigned to a row.
func (r *RAIDR) RowPeriod(row int) time.Duration { return r.bins[r.rowBin[row]] }

// SilentFailuresUnderVRT counts VRT episodes that cause silent data loss:
// a cell whose retention degraded to `degraded` fails silently when its
// row's assigned period exceeds the degraded retention — there is no ECC
// to catch it. Cells are placed on uniformly random rows.
func (r *RAIDR) SilentFailuresUnderVRT(nCells int, degraded time.Duration, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	failures := 0
	for i := 0; i < nCells; i++ {
		row := rng.Intn(len(r.rowBin))
		if r.RowPeriod(row) > degraded {
			failures++
		}
	}
	return failures
}

// Flikker models Liu et al.'s ASPLOS'11 critical/non-critical partition:
// the critical fraction refreshes at the base period, the rest at the
// relaxed period, and errors in the non-critical region are exposed to
// the application.
type Flikker struct {
	// CriticalFraction is the memory share that must stay error-free.
	CriticalFraction float64
	// Base and Relaxed are the two refresh periods.
	Base, Relaxed time.Duration
}

// NewFlikker validates and builds the model.
func NewFlikker(criticalFraction float64, base, relaxed time.Duration) (*Flikker, error) {
	if criticalFraction < 0 || criticalFraction > 1 || relaxed <= base || base <= 0 {
		return nil, fmt.Errorf("%w: fraction=%v base=%v relaxed=%v",
			ErrBadProfile, criticalFraction, base, relaxed)
	}
	return &Flikker{CriticalFraction: criticalFraction, Base: base, Relaxed: relaxed}, nil
}

// RefreshRateNorm returns the effective refresh rate relative to
// refreshing everything at the base period — the paper's Amdahl point:
// with 1/4 critical at rate 1 and 3/4 at 1/16, the effective rate is
// still ≈ 0.30.
func (f *Flikker) RefreshRateNorm() float64 {
	ratio := f.Base.Seconds() / f.Relaxed.Seconds()
	return f.CriticalFraction + (1-f.CriticalFraction)*ratio
}

// ExposedErrorRate returns the bit error rate the application must
// tolerate in the non-critical region.
func (f *Flikker) ExposedErrorRate(model *retention.Model) float64 {
	return model.BER(f.Relaxed)
}

// SECRET models Shen et al.'s ICCD'12 scheme: cells profiled as failing
// at the relaxed period get dedicated correction resources; everything
// refreshes slowly. Like RAIDR it trusts the profile, so VRT cells that
// degrade after profiling fail silently.
type SECRET struct {
	// PatchedCells is the number of profiled weak cells given patch
	// storage (the scheme's overhead scales with this).
	PatchedCells int
	// Relaxed is the slow refresh period.
	Relaxed time.Duration
}

// NewSECRET sizes the patch table for a memory of totalBits at the
// relaxed period's BER.
func NewSECRET(model *retention.Model, totalBits float64, relaxed time.Duration) (*SECRET, error) {
	if relaxed <= 0 || totalBits <= 0 {
		return nil, fmt.Errorf("%w: relaxed=%v bits=%v", ErrBadProfile, relaxed, totalBits)
	}
	return &SECRET{
		PatchedCells: int(model.BER(relaxed) * totalBits),
		Relaxed:      relaxed,
	}, nil
}

// RefreshRateNorm returns refresh rate relative to the base period.
func (s *SECRET) RefreshRateNorm(base time.Duration) float64 {
	return base.Seconds() / s.Relaxed.Seconds()
}

// SilentFailuresUnderVRT counts VRT episodes causing silent loss: every
// VRT cell that was healthy at profiling time (and so is unpatched)
// whose degraded retention falls below the relaxed period fails.
func (s *SECRET) SilentFailuresUnderVRT(nCells int, degraded time.Duration) int {
	if degraded >= s.Relaxed {
		return 0
	}
	return nCells
}
