package multirate

import (
	"math"
	"testing"
	"time"

	"repro/internal/retention"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSampleRowProfileStatistics(t *testing.T) {
	model := retention.DefaultModel()
	const (
		rows  = 20000
		cells = 65536 // one 8 KB row
	)
	p, err := SampleRowProfile(model, rows, cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.MinRetention) != rows {
		t.Fatalf("rows = %d", len(p.MinRetention))
	}
	// Expected fraction of rows whose min retention < 256 ms:
	// 1-(1-BER(256ms))^cells.
	wantFrac := 1 - math.Pow(1-model.BER(ms(256)), cells)
	got := 0
	for _, r := range p.MinRetention {
		if r < ms(256) {
			got++
		}
	}
	gotFrac := float64(got) / rows
	if math.Abs(gotFrac-wantFrac) > 0.02+wantFrac*0.5 {
		t.Errorf("weak-row fraction = %.4f, want ≈ %.4f", gotFrac, wantFrac)
	}
	// Every retention positive.
	for _, r := range p.MinRetention {
		if r <= 0 {
			t.Fatal("nonpositive retention")
		}
	}
	if _, err := SampleRowProfile(model, 0, 1, 1); err == nil {
		t.Error("zero rows: want error")
	}
}

func TestRAIDRBinningAndSavings(t *testing.T) {
	model := retention.DefaultModel()
	p, err := SampleRowProfile(model, 32768, 65536, 2)
	if err != nil {
		t.Fatal(err)
	}
	bins := []time.Duration{ms(64), ms(128), ms(256)}
	r, err := NewRAIDR(p, bins)
	if err != nil {
		t.Fatal(err)
	}
	counts := r.BinCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 32768 {
		t.Fatalf("bin counts sum %d", total)
	}
	// At these BERs almost every row retains >256 ms: the top bin
	// dominates (that is RAIDR's whole premise).
	if frac := float64(counts[2]) / 32768; frac < 0.95 {
		t.Errorf("top-bin fraction = %.3f, want > 0.95", frac)
	}
	// Refresh savings close to 4x (64→256 ms for nearly all rows).
	norm := r.RefreshRateNorm()
	if norm > 0.30 || norm < 0.25 {
		t.Errorf("refresh rate norm = %.3f, want ≈ 0.26", norm)
	}
	// Row assignment never exceeds the profiled retention.
	for row, ret := range p.MinRetention {
		if r.RowPeriod(row) > ret && r.RowPeriod(row) != bins[0] {
			t.Fatalf("row %d assigned %v beyond retention %v", row, r.RowPeriod(row), ret)
		}
	}
}

func TestRAIDRValidation(t *testing.T) {
	p := &RowProfile{MinRetention: []time.Duration{time.Second}}
	if _, err := NewRAIDR(p, []time.Duration{ms(64)}); err == nil {
		t.Error("single bin: want error")
	}
	if _, err := NewRAIDR(p, []time.Duration{ms(128), ms(64)}); err == nil {
		t.Error("unsorted bins: want error")
	}
}

func TestRAIDRSilentFailuresUnderVRT(t *testing.T) {
	model := retention.DefaultModel()
	p, err := SampleRowProfile(model, 32768, 65536, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRAIDR(p, []time.Duration{ms(64), ms(128), ms(256)})
	if err != nil {
		t.Fatal(err)
	}
	// VRT cells degrade to 100 ms retention: any cell on a 128/256 ms
	// row (≈ all rows) silently fails.
	failures := r.SilentFailuresUnderVRT(1000, ms(100), 4)
	if failures < 950 {
		t.Errorf("VRT silent failures = %d / 1000, want nearly all", failures)
	}
	// Degradation milder than every bin: no failures.
	if got := r.SilentFailuresUnderVRT(1000, ms(300), 5); got != 0 {
		t.Errorf("no-degradation failures = %d", got)
	}
}

func TestFlikkerEffectiveRate(t *testing.T) {
	// The paper's Amdahl example: 1/4 critical at rate 1, 3/4 at 1/16
	// => effective ≈ 1/3.
	f, err := NewFlikker(0.25, ms(64), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := f.RefreshRateNorm()
	if math.Abs(got-0.298) > 0.01 {
		t.Errorf("Flikker effective rate = %.3f, paper ≈ 0.3", got)
	}
	// MECC by contrast reaches 1/16 = 0.0625 for the whole memory.
	if got < 0.0625*3 {
		t.Error("Flikker should be far worse than MECC's 1/16")
	}
	// Exposed non-critical error rate equals BER(1s).
	model := retention.DefaultModel()
	if rate := f.ExposedErrorRate(model); math.Abs(rate-retention.SlowBitErrorRate)/retention.SlowBitErrorRate > 1e-9 {
		t.Errorf("exposed BER = %g", rate)
	}
	if _, err := NewFlikker(1.5, ms(64), time.Second); err == nil {
		t.Error("bad fraction: want error")
	}
	if _, err := NewFlikker(0.5, time.Second, ms(64)); err == nil {
		t.Error("relaxed < base: want error")
	}
}

func TestSECRET(t *testing.T) {
	model := retention.DefaultModel()
	// 1 GB memory at 1 s: ~256K patched cells (the paper's Section II-B
	// estimate of failing bits).
	s, err := NewSECRET(model, float64(uint64(8)<<30), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.PatchedCells < 250_000 || s.PatchedCells > 290_000 {
		t.Errorf("patched cells = %d, want ≈ 272K", s.PatchedCells)
	}
	if got := s.RefreshRateNorm(ms(64)); math.Abs(got-0.064) > 1e-9 { // 64ms/1s
		t.Errorf("SECRET refresh norm = %v, want 1/16", got)
	}
	// All post-profiling VRT cells below the relaxed period fail.
	if got := s.SilentFailuresUnderVRT(500, ms(100)); got != 500 {
		t.Errorf("SECRET VRT failures = %d, want 500", got)
	}
	if got := s.SilentFailuresUnderVRT(500, 2*time.Second); got != 0 {
		t.Errorf("healthy cells failed: %d", got)
	}
	if _, err := NewSECRET(model, 0, time.Second); err == nil {
		t.Error("zero bits: want error")
	}
}
