package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestGeomean(t *testing.T) {
	got, err := Geomean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", got)
	}
	bad := []struct {
		name    string
		xs      []float64
		wantErr error
	}{
		{"empty", nil, ErrEmpty},
		{"zero value", []float64{1, 0}, ErrNonPositive},
		{"negative", []float64{-1}, ErrNonPositive},
		{"nan", []float64{math.NaN()}, ErrNonPositive},
		{"inf", []float64{math.Inf(1)}, ErrNonPositive},
	}
	for _, tc := range bad {
		if _, err := Geomean(tc.xs); !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("mean = %v", got)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("empty: want error")
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{2, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.5 || got[1] != 1 {
		t.Errorf("normalize = %v", got)
	}
	bad := []struct {
		name     string
		baseline float64
	}{
		{"zero", 0},
		{"nan", math.NaN()},
		{"+inf", math.Inf(1)},
		{"-inf", math.Inf(-1)},
	}
	for _, tc := range bad {
		if _, err := Normalize([]float64{1}, tc.baseline); !errors.Is(err, ErrZeroBaseline) {
			t.Errorf("%s baseline: err = %v, want ErrZeroBaseline", tc.name, err)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value", "prob")
	tb.AddRow("libq", 0.787, 1.8e-9)
	tb.AddRow("a-very-long-name", 123.456, 42)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/sep missing:\n%s", out)
	}
	if !strings.Contains(out, "0.787") {
		t.Errorf("small float formatting:\n%s", out)
	}
	if !strings.Contains(out, "1.80e-09") {
		t.Errorf("scientific formatting:\n%s", out)
	}
	if !strings.Contains(out, "123.5") {
		t.Errorf("fixed formatting:\n%s", out)
	}
	// Columns align: all lines equally padded per column widths.
	if len(lines[0]) == 0 {
		t.Error("empty header line")
	}
}

func TestFormatZero(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(0.0)
	if !strings.Contains(tb.String(), "0") {
		t.Error("zero formatting")
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart(20)
	c.SetReference(1.0)
	c.Add("libq", "SECDED", 0.99)
	c.Add("libq", "ECC-6", 0.78)
	c.Add("lbm", "ECC-6", 0.76)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	// Repeated label collapses for visual grouping.
	if !strings.HasPrefix(lines[1], "    ") {
		t.Errorf("second series should hide the label:\n%s", out)
	}
	// Longer value -> more #.
	c0 := strings.Count(lines[0], "#")
	c1 := strings.Count(lines[1], "#")
	if c0 <= c1 {
		t.Errorf("bar lengths not ordered: %d vs %d", c0, c1)
	}
	// Reference marker present.
	if !strings.Contains(out, "|") {
		t.Error("no reference marker")
	}
	// Degenerate charts do not panic.
	if NewBarChart(0).String() != "" {
		t.Error("empty chart should render empty")
	}
	d := NewBarChart(10)
	d.Add("x", "", -5)
	if !strings.Contains(d.String(), "0.000") {
		t.Error("negative values clamp to zero")
	}
}
