// Package stats provides the small numeric and formatting helpers the
// benchmark harness uses: geometric means (the paper's "ALL" bars),
// normalization, and fixed-width text tables that render each
// table/figure's rows.
package stats

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrEmpty reports an aggregate over no values.
var ErrEmpty = errors.New("stats: empty input")

// ErrNonPositive reports a geometric mean over a zero, negative, or
// non-finite value.
var ErrNonPositive = errors.New("stats: non-positive value")

// ErrZeroBaseline reports a normalization against a zero or non-finite
// baseline.
var ErrZeroBaseline = errors.New("stats: zero baseline")

// Geomean returns the geometric mean of positive values.
func Geomean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 1) {
			return 0, fmt.Errorf("%w: geomean of %g", ErrNonPositive, x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Normalize divides each value by the baseline. A zero or non-finite
// baseline returns ErrZeroBaseline rather than silently producing zeros
// or infinities.
func Normalize(xs []float64, baseline float64) ([]float64, error) {
	if baseline == 0 || math.IsNaN(baseline) || math.IsInf(baseline, 0) {
		return nil, fmt.Errorf("%w: %g", ErrZeroBaseline, baseline)
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / baseline
	}
	return out, nil
}

// Table renders fixed-width text tables for harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat picks a compact representation: scientific for extremes,
// fixed otherwise.
func formatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.2e", v)
	case av < 10:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
