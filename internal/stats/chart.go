package stats

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value of an ASCII bar chart.
type Bar struct {
	// Label names the bar; Series optionally tags grouped charts.
	Label, Series string
	// Value is the bar length (non-negative).
	Value float64
}

// BarChart renders labelled horizontal bars, the terminal stand-in for
// the paper's figures. Values are scaled to the configured width; an
// optional reference line (e.g. the 1.0 of a normalized-IPC plot) is
// marked with '|'.
type BarChart struct {
	width     int
	reference float64
	bars      []Bar
}

// NewBarChart builds a chart whose longest bar spans width characters.
func NewBarChart(width int) *BarChart {
	if width < 10 {
		width = 10
	}
	return &BarChart{width: width}
}

// SetReference draws a marker at the given value on every bar's scale.
func (c *BarChart) SetReference(v float64) { c.reference = v }

// Add appends one bar.
func (c *BarChart) Add(label, series string, value float64) {
	if value < 0 || math.IsNaN(value) || math.IsInf(value, 0) {
		value = 0
	}
	c.bars = append(c.bars, Bar{Label: label, Series: series, Value: value})
}

// String renders the chart.
func (c *BarChart) String() string {
	if len(c.bars) == 0 {
		return ""
	}
	maxVal := c.reference
	labelW, seriesW := 0, 0
	for _, b := range c.bars {
		if b.Value > maxVal {
			maxVal = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		if len(b.Series) > seriesW {
			seriesW = len(b.Series)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var sb strings.Builder
	prevLabel := ""
	for _, b := range c.bars {
		n := int(b.Value / maxVal * float64(c.width))
		label := b.Label
		if label == prevLabel {
			label = "" // group consecutive series visually
		} else {
			prevLabel = b.Label
		}
		line := []byte(strings.Repeat("#", n) + strings.Repeat(" ", c.width-n))
		if c.reference > 0 {
			ref := int(c.reference / maxVal * float64(c.width))
			if ref >= len(line) {
				ref = len(line) - 1
			}
			if ref >= 0 {
				line[ref] = '|'
			}
		}
		if seriesW > 0 {
			fmt.Fprintf(&sb, "%-*s %-*s %s %.3f\n", labelW, label, seriesW, b.Series, line, b.Value)
		} else {
			fmt.Fprintf(&sb, "%-*s %s %.3f\n", labelW, label, line, b.Value)
		}
	}
	return sb.String()
}
