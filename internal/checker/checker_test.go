package checker

import (
	"errors"
	"strings"
	"testing"
)

// has reports whether the suite recorded a violation of the named
// invariant whose detail contains frag.
func has(t *testing.T, s *Suite, invariant, frag string) bool {
	t.Helper()
	for _, v := range s.Violations() {
		if v.Invariant == invariant && strings.Contains(v.Detail, frag) {
			return true
		}
	}
	return false
}

func TestSuiteErr(t *testing.T) {
	s := NewSuite()
	if err := s.Err(); err != nil {
		t.Fatalf("empty suite: %v", err)
	}
	s.Report("refresh-ratio", 42, "planted %d", 1)
	if err := s.Err(); !errors.Is(err, ErrInvariant) {
		t.Fatalf("Err = %v, want ErrInvariant", err)
	}
	var nilSuite *Suite
	nilSuite.Report("x", 0, "ignored")
	if nilSuite.Err() != nil || nilSuite.Violations() != nil {
		t.Fatal("nil suite must be inert")
	}
}

func TestSuiteOnViolation(t *testing.T) {
	s := NewSuite()
	var fired []Violation
	s.SetOnViolation(func(v Violation) {
		fired = append(fired, v)
		// The callback runs outside the lock, so re-entering the suite
		// must not deadlock.
		_ = s.Violations()
	})
	s.Report("refresh-ratio", 7, "planted")
	if len(fired) != 1 || fired[0].Invariant != "refresh-ratio" || fired[0].At != 7 {
		t.Fatalf("callback fired = %+v, want one refresh-ratio@7", fired)
	}
	for i := 0; i < maxViolations+5; i++ {
		s.Report("spam", uint64(i), "v%d", i)
	}
	if len(fired) != maxViolations {
		t.Fatalf("callback fired %d times, want %d (drops must not fire)", len(fired), maxViolations)
	}
	s.SetOnViolation(nil)
	var nilSuite *Suite
	nilSuite.SetOnViolation(func(Violation) { t.Fatal("nil suite fired callback") })
	nilSuite.Report("x", 0, "ignored")
}

func TestSuiteRetentionCap(t *testing.T) {
	s := NewSuite()
	for i := 0; i < maxViolations+10; i++ {
		s.Report("spam", uint64(i), "v%d", i)
	}
	if got := len(s.Violations()); got != maxViolations {
		t.Fatalf("retained %d violations, want %d", got, maxViolations)
	}
	if s.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", s.Dropped())
	}
}

// --- refresh-ratio ---

func TestRefreshTrackerCleanSpan(t *testing.T) {
	s := NewSuite()
	tr := NewRefreshTracker(s, 100, 8, false, 8, true)
	for i := uint64(1); i <= 100; i++ {
		tr.OnRefresh(i*100, -1)
	}
	tr.Finish(10_000)
	if err := s.Err(); err != nil {
		t.Fatalf("clean span flagged: %v", err)
	}
}

func TestRefreshTrackerDetectsDeficit(t *testing.T) {
	s := NewSuite()
	tr := NewRefreshTracker(s, 100, 8, false, 8, true)
	// 10_000 cycles at interval 100 expect 100 refreshes (tolerance 10);
	// plant a schedule that dropped half of them.
	for i := uint64(1); i <= 50; i++ {
		tr.OnRefresh(i*100, -1)
	}
	tr.Finish(10_000)
	if !has(t, s, "refresh-ratio", "issued 50") {
		t.Fatalf("deficit not flagged: %v", s.Violations())
	}
}

func TestRefreshTrackerDetectsSurplus(t *testing.T) {
	s := NewSuite()
	tr := NewRefreshTracker(s, 100, 8, false, 8, true)
	// A post-idle catch-up storm: 400 refreshes in a 10_000-cycle span.
	for i := uint64(0); i < 400; i++ {
		tr.OnRefresh(i*25, -1)
	}
	tr.Finish(10_000)
	if !has(t, s, "refresh-ratio", "issued 400") {
		t.Fatalf("surplus not flagged: %v", s.Violations())
	}
}

func TestRefreshTrackerExcludesAdvances(t *testing.T) {
	s := NewSuite()
	tr := NewRefreshTracker(s, 100, 8, false, 8, true)
	// 5_000 stepped cycles with the right 50 refreshes, then a 1M-cycle
	// fast-forward that the controller never stepped across.
	for i := uint64(1); i <= 50; i++ {
		tr.OnRefresh(i*100, -1)
	}
	tr.OnAdvance(1_005_000, 1_000_000, false, 0)
	tr.Finish(1_005_000)
	if err := s.Err(); err != nil {
		t.Fatalf("excluded advance misaccounted: %v", err)
	}
}

func TestRefreshTrackerShiftSpans(t *testing.T) {
	s := NewSuite()
	tr := NewRefreshTracker(s, 100, 8, false, 8, true)
	// Span 1 at shift 0: 100 refreshes over 10_000 cycles — clean.
	for i := uint64(1); i <= 100; i++ {
		tr.OnRefresh(i*100, -1)
	}
	tr.OnShift(10_000, 4)
	// Span 2 at shift 4 (interval 1600): keep refreshing at the fast
	// rate — 100 refreshes where ~6 are expected.
	for i := uint64(1); i <= 100; i++ {
		tr.OnRefresh(10_000+i*100, -1)
	}
	tr.Finish(20_000)
	if !has(t, s, "refresh-ratio", "shift 4") {
		t.Fatalf("shifted span not flagged: %v", s.Violations())
	}
}

func TestRefreshTrackerSelfRefreshDivider(t *testing.T) {
	s := NewSuite()
	tr := NewRefreshTracker(s, 100, 8, false, 8, true)
	tr.ExpectDivider(4)
	// 1_600_000 cycles at divider 4: expect 1_600_000/(100<<4) = 1000.
	tr.OnAdvance(1_600_000, 1_600_000, true, 1000)
	if err := s.Err(); err != nil {
		t.Fatalf("correct pulse count flagged: %v", err)
	}
	// The channel crediting JEDEC-rate pulses (divider ignored) must trip.
	tr.OnAdvance(3_200_000, 1_600_000, true, 16_000)
	if !has(t, s, "refresh-ratio", "expected 1000") {
		t.Fatalf("divider mismatch not flagged: %v", s.Violations())
	}
	if tr.SelfRefreshPulses() != 17_000 {
		t.Fatalf("pulses = %d, want 17000", tr.SelfRefreshPulses())
	}
}

func TestRefreshTrackerNilSafe(t *testing.T) {
	var tr *RefreshTracker
	tr.OnShift(0, 1)
	tr.OnRefresh(0, 0)
	tr.OnAdvance(0, 10, true, 1)
	tr.ExpectDivider(4)
	tr.Finish(100)
	if tr.SelfRefreshPulses() != 0 {
		t.Fatal("nil tracker must be inert")
	}
}

// --- MECC state machine ---

// fakeView is an MDT whose marked set the test controls.
type fakeView struct{ marked map[uint64]bool }

func (f fakeView) MDTMarked(r uint64) bool { return f.marked[r] }

func newActiveMECC(s *Suite, smd bool) *MECC {
	m := NewMECC(s, 1024, true, 16, smd, 2)
	m.Attach(fakeView{marked: map[uint64]bool{}}, true, !smd)
	return m
}

func TestMECCLegalLifecycle(t *testing.T) {
	s := NewSuite()
	view := fakeView{marked: map[uint64]bool{}}
	m := NewMECC(s, 1024, true, 16, false, 2)
	m.Attach(view, true, true)
	// Two downgrades in region 0 and 1, MDT marks both, sweep restores 2.
	m.OnRead(5, 10, true, true)
	view.marked[0] = true
	m.OnWrite(100, 20, true, true)
	view.marked[1] = true
	m.OnRead(5, 30, false, false) // weak re-read, no transition
	if m.WeakLines() != 2 {
		t.Fatalf("weak lines = %d, want 2", m.WeakLines())
	}
	m.OnSweepStart(40)
	m.OnSweepEnd(40, 2)
	m.OnPhase(50, true, true)
	if err := s.Err(); err != nil {
		t.Fatalf("legal lifecycle flagged: %v", err)
	}
}

func TestMECCDowngradeWhileDisabled(t *testing.T) {
	s := NewSuite()
	m := newActiveMECC(s, true) // SMD on → downgrades start disabled
	m.OnRead(7, 10, true, true)
	if !has(t, s, "ecc-transition", "ECC-Downgrade is disabled") {
		t.Fatalf("illegal downgrade not flagged: %v", s.Violations())
	}
}

func TestMECCDowngradeOfWeakLine(t *testing.T) {
	s := NewSuite()
	m := newActiveMECC(s, false)
	m.OnRead(7, 10, true, true)
	m.OnRead(7, 20, false, true) // weak→weak "downgrade"
	if !has(t, s, "ecc-transition", "already weak") {
		t.Fatalf("double downgrade not flagged: %v", s.Violations())
	}
}

func TestMECCShadowModeMismatch(t *testing.T) {
	s := NewSuite()
	m := newActiveMECC(s, false)
	m.OnRead(7, 10, true, true)
	// A buggy controller losing the mode bit would report strong again.
	m.OnRead(7, 20, true, false)
	if !has(t, s, "ecc-transition", "shadow says weak") {
		t.Fatalf("mode-bit loss not flagged: %v", s.Violations())
	}
}

func TestMECCAccessWhileIdle(t *testing.T) {
	s := NewSuite()
	m := newActiveMECC(s, false)
	m.OnSweepStart(10)
	m.OnSweepEnd(10, 0)
	m.OnRead(3, 20, true, false)
	if !has(t, s, "ecc-transition", "while idle") {
		t.Fatalf("idle access not flagged: %v", s.Violations())
	}
}

func TestMECCMDTSupersetViolation(t *testing.T) {
	s := NewSuite()
	view := fakeView{marked: map[uint64]bool{}}
	m := NewMECC(s, 1024, true, 16, false, 2)
	m.Attach(view, true, true)
	m.OnRead(5, 10, true, true)
	// MDT never marked region 0: the sweep would skip a downgraded line.
	m.OnSweepStart(20)
	if !has(t, s, "mdt-superset", "region 0") {
		t.Fatalf("unmarked dirty region not flagged: %v", s.Violations())
	}
}

func TestMECCSweepCountMismatch(t *testing.T) {
	s := NewSuite()
	view := fakeView{marked: map[uint64]bool{0: true}}
	m := NewMECC(s, 1024, true, 16, false, 2)
	m.Attach(view, true, true)
	m.OnRead(5, 10, true, true)
	m.OnSweepStart(20)
	m.OnSweepEnd(20, 0) // claims nothing was upgraded
	if !has(t, s, "ecc-transition", "expected 1") {
		t.Fatalf("sweep count mismatch not flagged: %v", s.Violations())
	}
}

func TestMECCSMDGating(t *testing.T) {
	s := NewSuite()
	m := newActiveMECC(s, true)
	m.OnSMDEnable(10, 1.5, true) // below the threshold of 2
	if !has(t, s, "smd-gating", "1.500") {
		t.Fatalf("below-threshold enable not flagged: %v", s.Violations())
	}

	s2 := NewSuite()
	m2 := newActiveMECC(s2, true)
	m2.OnSMDEnable(10, 0, false) // no sample at all
	if !has(t, s2, "smd-gating", "without an MPKC sample") {
		t.Fatalf("unsampled enable not flagged: %v", s2.Violations())
	}

	s3 := NewSuite()
	m3 := newActiveMECC(s3, true)
	m3.OnPhase(10, true, true) // wake-up with downgrades already on
	if !has(t, s3, "smd-gating", "wake-up") {
		t.Fatalf("wake-up gating not flagged: %v", s3.Violations())
	}

	// Legal: sample above threshold.
	s4 := NewSuite()
	m4 := newActiveMECC(s4, true)
	m4.OnSMDEnable(10, 2.5, true)
	if err := s4.Err(); err != nil {
		t.Fatalf("legal SMD enable flagged: %v", err)
	}
}

func TestMECCNilSafe(t *testing.T) {
	var m *MECC
	m.Attach(nil, true, true)
	m.OnRead(0, 0, true, true)
	m.OnWrite(0, 0, true, true)
	m.OnSMDEnable(0, 0, false)
	m.OnSweepStart(0)
	m.OnSweepEnd(0, 1)
	m.OnPhase(0, true, true)
	if m.WeakLines() != 0 {
		t.Fatal("nil tracker must be inert")
	}
}

// --- energy / cycle accounting ---

func TestEnergyChecks(t *testing.T) {
	s := NewSuite()
	s.CheckNonNegative("energy/refresh", 1, -0.5)
	if !has(t, s, "energy", "energy/refresh") {
		t.Fatalf("negative energy not flagged: %v", s.Violations())
	}
	s2 := NewSuite()
	s2.CheckSum("energy/total", 1, 10, 3, 3, 3) // 10 != 9
	if !has(t, s2, "energy", "total 10") {
		t.Fatalf("bad sum not flagged: %v", s2.Violations())
	}
	s2 = NewSuite()
	s2.CheckSum("energy/total", 1, 9, 3, 3, 3)
	s2.CheckNonNegative("ok", 1, 0)
	if err := s2.Err(); err != nil {
		t.Fatalf("exact sum flagged: %v", err)
	}
	s3 := NewSuite()
	s3.CheckMonotonic("energy/phase", 1, 5, 4)
	if !has(t, s3, "energy", "shrank") {
		t.Fatalf("shrinking counter not flagged: %v", s3.Violations())
	}
	s4 := NewSuite()
	s4.CheckEqualU64("cycles/accounting", 1, 100, 99)
	if !has(t, s4, "cycles", "100 != 99") {
		t.Fatalf("cycle mismatch not flagged: %v", s4.Violations())
	}
}

// --- fault plans ---

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(7, 50, 1024, 1000)
	b := RandomPlan(7, 50, 1024, 1000)
	if len(a.Faults) != 50 || len(b.Faults) != 50 {
		t.Fatalf("plan sizes: %d, %d", len(a.Faults), len(b.Faults))
	}
	for i := range a.Faults {
		if a.Faults[i] != b.Faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, a.Faults[i], b.Faults[i])
		}
	}
	c := RandomPlan(8, 50, 1024, 1000)
	same := true
	for i := range a.Faults {
		if a.Faults[i] != c.Faults[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestRefreshFaultsConsumption(t *testing.T) {
	p := &FaultPlan{Faults: []Fault{
		{Kind: DropRefresh, Seq: 3},
		{Kind: DelayRefresh, Seq: 3, DelayCycles: 10},
		{Kind: DropRefresh, Seq: 5},
		{Kind: FlipDataBit, Seq: 1, LineAddr: 9, Bit: 100},
	}}
	rf := p.RefreshFaults()
	if _, ok := rf.Next(0); ok {
		t.Fatal("no fault scheduled at seq 0")
	}
	f1, ok := rf.Next(3)
	if !ok || f1.Kind != DropRefresh {
		t.Fatalf("seq 3 first pop = %+v, %v", f1, ok)
	}
	f2, ok := rf.Next(3)
	if !ok || f2.Kind != DelayRefresh {
		t.Fatalf("seq 3 second pop = %+v, %v", f2, ok)
	}
	if _, ok := rf.Next(3); ok {
		t.Fatal("seq 3 must be exhausted")
	}
	if _, ok := rf.Next(5); !ok {
		t.Fatal("seq 5 fault lost")
	}
	if rf.Consumed() != 3 {
		t.Fatalf("consumed = %d, want 3", rf.Consumed())
	}
	if got := len(p.MemoryFaults()); got != 1 {
		t.Fatalf("memory faults = %d, want 1", got)
	}
	// Nil-safety.
	var nilRF *RefreshFaults
	if _, ok := nilRF.Next(0); ok || nilRF.Consumed() != 0 {
		t.Fatal("nil RefreshFaults must be inert")
	}
	var nilPlan *FaultPlan
	if nilPlan.RefreshFaults() != nil || nilPlan.MemoryFaults() != nil {
		t.Fatal("nil plan must be inert")
	}
}

func TestSuiteContextLabel(t *testing.T) {
	s := NewSuite()
	s.Report("refresh-ratio", 10, "unlabelled")
	s.SetContext("phone-day/hot-idle")
	s.Report("refresh-ratio", 20, "labelled")
	s.SetContext("")
	s.Report("refresh-ratio", 30, "cleared")
	v := s.Violations()
	if len(v) != 3 {
		t.Fatalf("violations = %d, want 3", len(v))
	}
	if v[0].Context != "" || v[2].Context != "" {
		t.Errorf("contexts leaked outside the labelled window: %q, %q", v[0].Context, v[2].Context)
	}
	if v[1].Context != "phone-day/hot-idle" {
		t.Errorf("context = %q, want phone-day/hot-idle", v[1].Context)
	}
	if got, want := v[1].String(), "[phone-day/hot-idle] refresh-ratio@20: labelled"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := v[0].String(), "refresh-ratio@10: unlabelled"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if s.Context() != "" {
		t.Errorf("Context() = %q after clear", s.Context())
	}

	// Nil-safety: the hooks must be inert on a nil suite.
	var nilSuite *Suite
	nilSuite.SetContext("x")
	if nilSuite.Context() != "" {
		t.Error("nil suite context must be empty")
	}
}
