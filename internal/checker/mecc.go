package checker

// MECCView is the slice of core.Controller state the tracker may consult
// at sweep time. The interface lives here so core can import checker
// without a cycle.
type MECCView interface {
	// MDTMarked reports whether the MDT currently marks the region.
	MDTMarked(region uint64) bool
}

// MECC shadows the morphable-ECC state machine with its own per-line
// mode bitmap and dirty-region set, validating on every hook that the
// controller only takes legal transitions:
//
//   - strong→weak (ECC-Downgrade) only on an active-mode access while
//     downgrades are enabled, and only from strong mode;
//   - weak→strong only via the idle-entry upgrade sweep, which must
//     convert exactly the lines the shadow bitmap knows are weak;
//   - the MDT must mark every region holding a downgraded line when the
//     sweep starts (superset check);
//   - SMD may enable downgrades only from a sampled MPKC above the
//     threshold, and wake-up must leave downgrades disabled while SMD is
//     active.
//
// All methods are nil-safe: a nil tracker is a no-op.
//
//meccvet:nilsafe
type MECC struct {
	suite *Suite

	totalLines     uint64
	linesPerRegion uint64
	mdtEntries     uint64
	mdtEnabled     bool
	smdEnabled     bool
	threshold      float64

	view        MECCView
	active      bool
	downgradeOn bool

	weak      *bitset // set bit = line in weak (SECDED) mode
	weakCount uint64
	dirty     map[uint64]struct{} // regions downgraded since last sweep
}

// NewMECC builds a tracker for one morphable controller. linesPerRegion
// and mdtEntries mirror the controller's MDT geometry; they are ignored
// when mdtEnabled is false.
func NewMECC(s *Suite, totalLines uint64, mdtEnabled bool, mdtEntries int, smdEnabled bool, thresholdMPKC float64) *MECC {
	if totalLines == 0 {
		totalLines = 1
	}
	t := &MECC{
		suite:      s,
		totalLines: totalLines,
		mdtEnabled: mdtEnabled,
		smdEnabled: smdEnabled,
		threshold:  thresholdMPKC,
		weak:       newBitset(totalLines),
		dirty:      make(map[uint64]struct{}),
	}
	if mdtEnabled && mdtEntries > 0 {
		t.mdtEntries = uint64(mdtEntries)
		t.linesPerRegion = totalLines / t.mdtEntries
		if t.linesPerRegion == 0 {
			t.linesPerRegion = 1
		}
	}
	return t
}

// regionOf mirrors the controller's region mapping independently.
func (t *MECC) regionOf(addr uint64) uint64 {
	r := addr / t.linesPerRegion
	if r >= t.mdtEntries {
		r = t.mdtEntries - 1
	}
	return r
}

// Attach binds the tracker to a live controller view and synchronizes
// with its current phase. The shadow bitmap starts all-strong, matching
// the controller's boot state. Nil-safe.
func (t *MECC) Attach(view MECCView, active, downgradeOn bool) {
	if t == nil {
		return
	}
	t.view = view
	t.active = active
	t.downgradeOn = downgradeOn
}

// noteDowngrade applies one observed strong→weak transition to the
// shadow state, validating legality.
func (t *MECC) noteDowngrade(addr, now uint64, op string, wasStrong bool) {
	if !t.active {
		t.suite.Report("ecc-transition", now, "%s downgraded line %d while idle", op, addr)
	}
	if !t.downgradeOn {
		t.suite.Report("ecc-transition", now, "%s downgraded line %d while ECC-Downgrade is disabled", op, addr)
	}
	if !wasStrong {
		t.suite.Report("ecc-transition", now, "%s downgraded line %d that was already weak", op, addr)
	}
	addr %= t.totalLines
	if !t.weak.get(addr) {
		t.weak.set(addr, true)
		t.weakCount++
	}
	if t.mdtEnabled {
		t.dirty[t.regionOf(addr)] = struct{}{}
	}
}

// OnRead observes one active-mode read: wasStrong is the line's mode
// before the access, downgraded whether the controller converted it.
// Nil-safe.
func (t *MECC) OnRead(addr, now uint64, wasStrong, downgraded bool) {
	if t == nil {
		return
	}
	if !t.active {
		t.suite.Report("ecc-transition", now, "read of line %d while idle", addr)
	}
	t.checkShadowMode(addr, now, wasStrong)
	if downgraded {
		t.noteDowngrade(addr, now, "read", wasStrong)
	}
}

// OnWrite observes one active-mode writeback. Nil-safe.
func (t *MECC) OnWrite(addr, now uint64, wasStrong, downgraded bool) {
	if t == nil {
		return
	}
	if !t.active {
		t.suite.Report("ecc-transition", now, "write of line %d while idle", addr)
	}
	t.checkShadowMode(addr, now, wasStrong)
	if downgraded {
		t.noteDowngrade(addr, now, "write", wasStrong)
	}
}

// checkShadowMode compares the controller's view of a line's mode with
// the shadow bitmap.
func (t *MECC) checkShadowMode(addr, now uint64, wasStrong bool) {
	if shadowWeak := t.weak.get(addr % t.totalLines); shadowWeak == wasStrong {
		mode := "strong"
		if shadowWeak {
			mode = "weak"
		}
		t.suite.Report("ecc-transition", now,
			"line %d: controller reports strong=%v, shadow says %s", addr, wasStrong, mode)
	}
}

// OnSMDEnable observes ECC-Downgrade turning on. sampled is true when the
// decision came from an SMD window evaluation carrying an MPKC sample,
// false for the unconditional enable at wake-up without SMD. Nil-safe.
func (t *MECC) OnSMDEnable(now uint64, mpkc float64, sampled bool) {
	if t == nil {
		return
	}
	if t.smdEnabled {
		if !sampled {
			t.suite.Report("smd-gating", now, "downgrade enabled without an MPKC sample while SMD is active")
		} else if mpkc <= t.threshold {
			t.suite.Report("smd-gating", now, "downgrade enabled at MPKC %.3f <= threshold %.3f", mpkc, t.threshold)
		}
	}
	t.downgradeOn = true
}

// OnSweepStart observes the start of an idle-entry upgrade sweep, while
// the controller's MDT still holds its pre-reset contents: every dirty
// region in the shadow state must be marked. Nil-safe.
func (t *MECC) OnSweepStart(now uint64) {
	if t == nil {
		return
	}
	if !t.active {
		t.suite.Report("ecc-transition", now, "upgrade sweep started while already idle")
	}
	if t.mdtEnabled && t.view != nil {
		for r := range t.dirty {
			if !t.view.MDTMarked(r) {
				t.suite.Report("mdt-superset", now,
					"region %d holds downgraded lines but is not marked in the MDT", r)
			}
		}
	}
}

// OnSweepEnd observes the end of the sweep: the controller reports how
// many lines it upgraded, which must equal the shadow count of weak
// lines (every weak line lives in a dirty — hence marked — region, so
// the sweep must restore all of them). The tracker then transitions to
// idle. Nil-safe.
func (t *MECC) OnSweepEnd(now, linesUpgraded uint64) {
	if t == nil {
		return
	}
	if linesUpgraded != t.weakCount {
		t.suite.Report("ecc-transition", now,
			"upgrade sweep converted %d lines, shadow state expected %d", linesUpgraded, t.weakCount)
	}
	t.weak.clearAll()
	t.weakCount = 0
	for r := range t.dirty {
		delete(t.dirty, r)
	}
	t.active = false
	t.downgradeOn = false
}

// OnPhase observes a wake-up (active=true) or idle entry. With SMD
// enabled, wake-up must leave downgrades disabled until the traffic
// monitor votes. Nil-safe.
func (t *MECC) OnPhase(now uint64, active, downgradeOn bool) {
	if t == nil {
		return
	}
	if active && downgradeOn && t.smdEnabled {
		t.suite.Report("smd-gating", now, "wake-up enabled downgrades immediately despite SMD")
	}
	t.active = active
	t.downgradeOn = downgradeOn
}

// WeakLines returns the shadow count of weak lines (for tests). Nil-safe.
func (t *MECC) WeakLines() uint64 {
	if t == nil {
		return 0
	}
	return t.weakCount
}
