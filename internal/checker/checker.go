// Package checker provides pluggable run-time invariant checkers for the
// simulator, wired through sim/memctrl/dram/core behind nil-safe hooks in
// the same style as internal/obs: a nil tracker costs one branch per hook
// and performs no work, so the default (unchecked) configuration keeps
// the hot paths on their zero-allocation no-op branches and results stay
// bit-identical.
//
// The invariants pinned here are the paper's structural claims, checked
// against independently tracked shadow state rather than the subsystem's
// own counters:
//
//   - refresh-ratio: auto-refresh issue counts must match the configured
//     period (tREFI << shift, divided across banks for REFpb), and idle
//     self-refresh pulses must reflect the scheme's divider (64 ms vs 1 s
//     ⇒ 16x fewer pulses at divider 4);
//   - mdt-superset: the MDT bitmap must mark every region that actually
//     contains a downgraded line when the upgrade sweep starts;
//   - smd-gating: SMD may only enable ECC-Downgrade when a sampled MPKC
//     exceeds the configured threshold;
//   - ecc-transition: a line may go strong→weak only by an active-mode
//     access while downgrades are enabled, and weak→strong only via the
//     idle-entry upgrade sweep;
//   - energy/cycles: energy components must be non-negative, sum to the
//     reported total, grow monotonically across phases, and state
//     residency must account for every DRAM cycle exactly once.
//
// The package also hosts the deterministic fault-injection layer
// (fault.go) that drives the checkers and the graceful-degradation tests.
package checker

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrInvariant is wrapped by Suite.Err when any violation was recorded.
var ErrInvariant = errors.New("checker: invariant violated")

// maxViolations bounds how many violations a suite retains; a broken
// invariant in a hot loop would otherwise accumulate millions of
// identical records.
const maxViolations = 64

// Violation is one recorded invariant breach.
type Violation struct {
	// Invariant names the broken rule (e.g. "refresh-ratio").
	Invariant string
	// At is the cycle (clock domain depends on the invariant) at which
	// the breach was detected.
	At uint64
	// Detail is a human-readable description.
	Detail string
	// Context is the suite's context label at report time (see
	// SetContext): typically "scenario/phase" for scenario-driven runs,
	// empty for plain runs. A sim-time alone does not say which phase of
	// a multi-phase workload was executing; the label does.
	Context string
}

// String renders the violation for logs and test failures.
func (v Violation) String() string {
	if v.Context != "" {
		return fmt.Sprintf("[%s] %s@%d: %s", v.Context, v.Invariant, v.At, v.Detail)
	}
	return fmt.Sprintf("%s@%d: %s", v.Invariant, v.At, v.Detail)
}

// Suite collects violations from every attached tracker. All methods are
// nil-safe and safe for concurrent use, so one suite can watch a whole
// parallel exhibit run.
//
//meccvet:nilsafe
type Suite struct {
	mu          sync.Mutex
	violations  []Violation
	dropped     uint64
	onViolation func(Violation)
	context     string
}

// NewSuite returns an empty suite.
func NewSuite() *Suite { return &Suite{} }

// SetOnViolation installs a callback fired once per retained violation
// (drops past the retention cap do not fire it). The command layer uses
// this to dump the flight recorder the moment an invariant breaks, while
// the machine state that produced the breach is still in the ring. The
// callback runs outside the suite's lock — it may call back into the
// suite — but must itself be safe for concurrent use, since trackers on
// parallel runs report concurrently. Nil-safe; nil fn clears it.
func (s *Suite) SetOnViolation(fn func(Violation)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onViolation = fn
	s.mu.Unlock()
}

// SetContext labels subsequently reported violations with a run context
// (e.g. "scenario-name/phase-name"), so failures from multi-phase runs
// are self-describing. An empty string clears the label. Nil-safe.
func (s *Suite) SetContext(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.context = label
	s.mu.Unlock()
}

// Context returns the current context label. Nil-safe.
func (s *Suite) Context() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.context
}

// Report records a violation stamped with the current context label.
// Nil-safe.
func (s *Suite) Report(invariant string, at uint64, format string, args ...any) {
	if s == nil {
		return
	}
	v := Violation{
		Invariant: invariant,
		At:        at,
		Detail:    fmt.Sprintf(format, args...),
	}
	s.mu.Lock()
	v.Context = s.context
	if len(s.violations) >= maxViolations {
		s.dropped++
		s.mu.Unlock()
		return
	}
	s.violations = append(s.violations, v)
	fn := s.onViolation
	s.mu.Unlock()
	if fn != nil {
		fn(v)
	}
}

// Violations returns a copy of the recorded violations. Nil-safe.
func (s *Suite) Violations() []Violation {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Violation(nil), s.violations...)
}

// Dropped reports how many violations were discarded beyond the
// retention cap. Nil-safe.
func (s *Suite) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Err returns nil when no violation was recorded, else an error wrapping
// ErrInvariant that lists the first few breaches. Nil-safe.
func (s *Suite) Err() error {
	if s == nil {
		return nil
	}
	v := s.Violations()
	if len(v) == 0 {
		return nil
	}
	msg := v[0].String()
	if len(v) > 1 {
		msg = fmt.Sprintf("%s (and %d more)", msg, len(v)-1)
	}
	return fmt.Errorf("%w: %s", ErrInvariant, msg)
}

// CheckNonNegative records a violation when v is negative or NaN.
// Nil-safe.
func (s *Suite) CheckNonNegative(name string, at uint64, v float64) {
	if s == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		s.Report("energy", at, "%s = %v, want >= 0", name, v)
	}
}

// CheckSum records a violation when total is not the sum of parts within
// a relative tolerance of 1e-9. Nil-safe.
func (s *Suite) CheckSum(name string, at uint64, total float64, parts ...float64) {
	if s == nil {
		return
	}
	var sum float64
	for _, p := range parts {
		sum += p
	}
	tol := 1e-9 * math.Max(math.Abs(total), math.Abs(sum))
	if tol < 1e-15 {
		tol = 1e-15
	}
	if math.Abs(total-sum) > tol || math.IsNaN(total) || math.IsNaN(sum) {
		s.Report("energy", at, "%s: total %v != sum of parts %v", name, total, sum)
	}
}

// CheckMonotonic records a violation when next < prev (a counter that
// should only grow shrank). Nil-safe.
func (s *Suite) CheckMonotonic(name string, at uint64, prev, next float64) {
	if s == nil {
		return
	}
	if next < prev {
		s.Report("energy", at, "%s shrank: %v -> %v", name, prev, next)
	}
}

// CheckEqualU64 records a violation when a != b. Nil-safe.
func (s *Suite) CheckEqualU64(name string, at uint64, a, b uint64) {
	if s == nil {
		return
	}
	if a != b {
		s.Report("cycles", at, "%s: %d != %d", name, a, b)
	}
}
