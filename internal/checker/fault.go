package checker

import (
	"fmt"
	"math/rand"
	"sort"
)

// FaultKind classifies an injected fault.
type FaultKind int

// Fault kinds. Memory faults (FlipDataBit, FlipCheckBit) are applied to
// stored lines by the test harness; refresh faults (DropRefresh,
// DelayRefresh) are consumed by the memory controller at refresh-issue
// points.
const (
	// FlipDataBit flips one data bit (0..511) of a stored line.
	FlipDataBit FaultKind = iota + 1
	// FlipCheckBit flips one spare/check bit of a stored line (the
	// harness maps Bit into the spare field).
	FlipCheckBit
	// DropRefresh silently swallows one due auto-refresh command.
	DropRefresh
	// DelayRefresh postpones one due auto-refresh by DelayCycles.
	DelayRefresh
)

// String renders the kind.
func (k FaultKind) String() string {
	switch k {
	case FlipDataBit:
		return "flip-data-bit"
	case FlipCheckBit:
		return "flip-check-bit"
	case DropRefresh:
		return "drop-refresh"
	case DelayRefresh:
		return "delay-refresh"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scheduled fault.
type Fault struct {
	// Kind selects the fault type.
	Kind FaultKind
	// Seq orders the fault: for refresh faults it is the refresh issue
	// sequence number at which the fault fires; for memory faults it is
	// the injection step.
	Seq uint64
	// LineAddr targets a stored line (memory faults).
	LineAddr uint64
	// Bit is the bit to flip within the line (memory faults): data bits
	// 0..511, check bits from 512 up.
	Bit int
	// DelayCycles postpones the refresh (DelayRefresh only).
	DelayCycles uint64
}

// FaultPlan is a deterministic, seeded fault schedule, sorted by Seq.
type FaultPlan struct {
	// Seed records the generator seed for reproduction in logs.
	Seed int64
	// Faults holds the schedule in Seq order.
	Faults []Fault
}

// RandomPlan builds a schedule of n faults drawn from the given kinds
// (all four when none are named), targeting lines in [0, totalLines) and
// refresh sequence numbers in [0, seqSpan). The same seed always yields
// the same plan.
func RandomPlan(seed int64, n int, totalLines, seqSpan uint64, kinds ...FaultKind) *FaultPlan {
	if len(kinds) == 0 {
		kinds = []FaultKind{FlipDataBit, FlipCheckBit, DropRefresh, DelayRefresh}
	}
	if totalLines == 0 {
		totalLines = 1
	}
	if seqSpan == 0 {
		seqSpan = 1
	}
	rng := rand.New(rand.NewSource(seed))
	p := &FaultPlan{Seed: seed, Faults: make([]Fault, 0, n)}
	for i := 0; i < n; i++ {
		f := Fault{
			Kind: kinds[rng.Intn(len(kinds))],
			Seq:  uint64(rng.Int63n(int64(seqSpan))),
		}
		switch f.Kind {
		case FlipDataBit:
			f.LineAddr = uint64(rng.Int63n(int64(totalLines)))
			f.Bit = rng.Intn(512)
		case FlipCheckBit:
			f.LineAddr = uint64(rng.Int63n(int64(totalLines)))
			f.Bit = 512 + rng.Intn(64)
		case DelayRefresh:
			f.DelayCycles = uint64(1 + rng.Intn(4096))
		}
		p.Faults = append(p.Faults, f)
	}
	sort.SliceStable(p.Faults, func(i, j int) bool { return p.Faults[i].Seq < p.Faults[j].Seq })
	return p
}

// MemoryFaults returns the plan's stored-line faults in schedule order.
func (p *FaultPlan) MemoryFaults() []Fault {
	if p == nil {
		return nil
	}
	var out []Fault
	for _, f := range p.Faults {
		if f.Kind == FlipDataBit || f.Kind == FlipCheckBit {
			out = append(out, f)
		}
	}
	return out
}

// RefreshFaults returns the plan's refresh faults wrapped for consumption
// by the memory controller, or nil when the plan holds none.
func (p *FaultPlan) RefreshFaults() *RefreshFaults {
	if p == nil {
		return nil
	}
	bySeq := make(map[uint64][]Fault)
	n := 0
	for _, f := range p.Faults {
		if f.Kind == DropRefresh || f.Kind == DelayRefresh {
			bySeq[f.Seq] = append(bySeq[f.Seq], f)
			n++
		}
	}
	if n == 0 {
		return nil
	}
	return &RefreshFaults{bySeq: bySeq}
}

// RefreshFaults hands refresh faults to the memory controller by issue
// sequence number. Each fault fires at most once. All methods are
// nil-safe.
//
//meccvet:nilsafe
type RefreshFaults struct {
	bySeq    map[uint64][]Fault
	consumed uint64
}

// Next pops the next fault scheduled for refresh sequence number seq, if
// any. Nil-safe.
func (r *RefreshFaults) Next(seq uint64) (Fault, bool) {
	if r == nil {
		return Fault{}, false
	}
	q := r.bySeq[seq]
	if len(q) == 0 {
		return Fault{}, false
	}
	f := q[0]
	if len(q) == 1 {
		delete(r.bySeq, seq)
	} else {
		r.bySeq[seq] = q[1:]
	}
	r.consumed++
	return f, true
}

// Consumed reports how many faults have fired. Nil-safe.
func (r *RefreshFaults) Consumed() uint64 {
	if r == nil {
		return 0
	}
	return r.consumed
}
