package checker

// bitset is a dense bit vector for the MECC shadow mode bitmap (2 MB at
// the paper's 16M-line memory).
type bitset struct {
	words []uint64
}

func newBitset(n uint64) *bitset {
	return &bitset{words: make([]uint64, (n+63)/64)}
}

func (b *bitset) get(i uint64) bool {
	return b.words[i>>6]>>(i&63)&1 == 1
}

func (b *bitset) set(i uint64, v bool) {
	if v {
		b.words[i>>6] |= 1 << (i & 63)
	} else {
		b.words[i>>6] &^= 1 << (i & 63)
	}
}

func (b *bitset) clearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}
