package checker

// RefreshTracker validates refresh accounting across memctrl (which
// issues auto-refresh commands) and dram (which fast-forwards through
// quiescent stretches and self-refresh periods). It works in spans: a
// span is a stretch of auto-refresh operation at one refresh shift, and
// at every shift change — and at Finish — the tracker compares the
// refreshes actually issued against the count implied by the effective
// interval (tREFI << shift, divided across banks for per-bank refresh).
// Cycles that the channel fast-forwarded (AdvanceTo) are excluded from
// the span, since the controller is not stepped across them; JEDEC-style
// postponement gives the comparison a bounded tolerance.
//
// Self-refresh periods are validated separately: the channel reports the
// pulses it credited for each fast-forward, and the tracker recomputes
// them from tREFI and the divider the scheme intended (ExpectDivider),
// pinning the paper's 16x claim — at divider 4 an idle second earns
// 1/16th the pulses of JEDEC-rate refresh.
//
// All methods are nil-safe: a nil tracker is a no-op.
//
//meccvet:nilsafe
type RefreshTracker struct {
	suite *Suite

	trefi        uint64
	banks        int
	perBank      bool
	maxPostponed int
	enabled      bool

	// Current span state (DRAM cycles).
	shift     int
	spanStart uint64
	excluded  uint64
	issued    uint64

	// Self-refresh validation state.
	expectDivider int // scheme-intended divider; -1 = not in managed SR
	srPulses      uint64
}

// NewRefreshTracker builds a tracker for one controller+channel pair.
func NewRefreshTracker(s *Suite, trefi uint64, banks int, perBank bool, maxPostponed int, refreshEnabled bool) *RefreshTracker {
	if trefi == 0 {
		trefi = 1
	}
	if banks <= 0 {
		banks = 1
	}
	return &RefreshTracker{
		suite:         s,
		trefi:         trefi,
		banks:         banks,
		perBank:       perBank,
		maxPostponed:  maxPostponed,
		enabled:       refreshEnabled,
		expectDivider: -1,
	}
}

// interval returns the effective auto-refresh interval at the span's
// shift, mirroring the controller's arithmetic independently.
func (t *RefreshTracker) interval() uint64 {
	iv := t.trefi << t.shift
	if t.perBank {
		iv /= uint64(t.banks)
		if iv == 0 {
			iv = 1
		}
	}
	return iv
}

// closeSpan compares the span's issued count against the expected count
// and restarts the span at `now`.
func (t *RefreshTracker) closeSpan(now uint64) {
	if t.enabled && now > t.spanStart {
		elapsed := now - t.spanStart
		if t.excluded > elapsed {
			t.excluded = elapsed
		}
		effective := elapsed - t.excluded
		expected := effective / t.interval()
		tol := uint64(t.maxPostponed + 2)
		var deficit uint64
		switch {
		case t.issued+tol < expected:
			deficit = expected - t.issued
		case expected+tol < t.issued:
			deficit = t.issued - expected
		}
		if deficit > 0 {
			t.suite.Report("refresh-ratio", now,
				"span [%d,%d) shift %d: issued %d refreshes, expected %d (interval %d, %d cycles excluded, tolerance %d)",
				t.spanStart, now, t.shift, t.issued, expected, t.interval(), t.excluded, tol)
		}
	}
	t.spanStart = now
	t.excluded = 0
	t.issued = 0
}

// OnShift notes a refresh-rate change at DRAM cycle now, closing the
// current span. Nil-safe.
func (t *RefreshTracker) OnShift(now uint64, shift int) {
	if t == nil {
		return
	}
	if shift == t.shift {
		return
	}
	t.closeSpan(now)
	t.shift = shift
}

// OnRefresh counts one issued auto-refresh (REF or REFpb). Nil-safe.
func (t *RefreshTracker) OnRefresh(now uint64, bank int) {
	if t == nil {
		return
	}
	t.issued++
}

// OnAdvance notes a channel fast-forward of delta cycles. Non-self-
// refresh advances are excluded from the auto-refresh span (the
// controller is not stepped across them); self-refresh advances are
// cross-checked against the intended divider: the channel's credited
// pulses must equal delta / (tREFI << divider). Nil-safe.
func (t *RefreshTracker) OnAdvance(now, delta uint64, selfRefresh bool, pulses uint64) {
	if t == nil || delta == 0 {
		return
	}
	t.excluded += delta
	if !selfRefresh {
		return
	}
	t.srPulses += pulses
	if t.expectDivider >= 0 {
		expected := delta / (t.trefi << t.expectDivider)
		if pulses != expected {
			t.suite.Report("refresh-ratio", now,
				"self-refresh advance of %d cycles credited %d pulses, expected %d at divider %d",
				delta, pulses, expected, t.expectDivider)
		}
	}
}

// ExpectDivider tells the tracker which self-refresh divider the scheme
// intends for the next idle period; pass -1 when leaving managed self
// refresh. Nil-safe.
func (t *RefreshTracker) ExpectDivider(bits int) {
	if t == nil {
		return
	}
	t.expectDivider = bits
}

// SelfRefreshPulses returns the total pulses observed across checks (for
// tests). Nil-safe.
func (t *RefreshTracker) SelfRefreshPulses() uint64 {
	if t == nil {
		return 0
	}
	return t.srPulses
}

// Finish closes the final span at DRAM cycle now. Further hooks restart
// tracking from now. Nil-safe.
func (t *RefreshTracker) Finish(now uint64) {
	if t == nil {
		return
	}
	t.closeSpan(now)
}
