package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, size, line, assoc int) *Cache {
	t.Helper()
	c, err := New(size, line, assoc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidation(t *testing.T) {
	cases := []struct{ size, line, assoc int }{
		{0, 64, 8},
		{1 << 20, 0, 8},
		{1 << 20, 64, 0},
		{1000, 64, 8},    // not line-divisible
		{64 * 24, 64, 8}, // 3 sets: not a power of two
	}
	for i, c := range cases {
		if _, err := New(c.size, c.line, c.assoc); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	c := mustCache(t, 1<<20, 64, 8)
	if got := c.Sets(); got != 2048 {
		t.Errorf("1MB/64B/8-way sets = %d, want 2048", got)
	}
}

func TestHitAfterFill(t *testing.T) {
	c := mustCache(t, 1<<20, 64, 8)
	r := c.Access(100, false)
	if r.Hit || r.Fill != 100 || r.WritebackValid {
		t.Fatalf("first access: %+v", r)
	}
	r = c.Access(100, false)
	if !r.Hit {
		t.Fatal("second access should hit")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate %v", s.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish small cache: 2 sets x 2 ways of 64 B lines.
	c := mustCache(t, 256, 64, 2)
	// Fill set 0 (even line addresses map to set 0: addr&1).
	c.Access(0, false) // set 0
	c.Access(2, false) // set 0
	c.Access(0, false) // touch 0: now 2 is LRU
	r := c.Access(4, false)
	if r.Hit {
		t.Fatal("should miss")
	}
	// 2 was LRU and clean: no writeback.
	if r.WritebackValid {
		t.Fatal("clean victim produced writeback")
	}
	if !c.Access(0, false).Hit {
		t.Error("0 should have been retained (MRU)")
	}
	if c.Access(2, false).Hit {
		t.Error("2 should have been evicted (LRU)")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustCache(t, 256, 64, 2)
	c.Access(0, true) // dirty
	c.Access(2, false)
	r := c.Access(4, false) // evicts 0 (LRU, dirty)
	if !r.WritebackValid || r.Writeback != 0 {
		t.Fatalf("expected writeback of line 0: %+v", r)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks = %d", got)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := mustCache(t, 256, 64, 2)
	c.Access(0, false)
	c.Access(0, true) // hit, marks dirty
	c.Access(2, false)
	r := c.Access(4, false)
	if !r.WritebackValid || r.Writeback != 0 {
		t.Fatalf("dirty-on-hit not written back: %+v", r)
	}
}

func TestFlushDirty(t *testing.T) {
	c := mustCache(t, 1<<12, 64, 4)
	c.Access(10, true)
	c.Access(20, true)
	c.Access(30, false)
	dirty := c.FlushDirty()
	if len(dirty) != 2 || dirty[0] != 10 || dirty[1] != 20 {
		t.Fatalf("FlushDirty = %v", dirty)
	}
	// Second flush: nothing dirty.
	if got := c.FlushDirty(); len(got) != 0 {
		t.Errorf("second flush = %v", got)
	}
	// Lines are still cached after flush.
	if !c.Access(10, false).Hit {
		t.Error("flushed line evicted")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, 1<<12, 64, 4)
	c.Access(10, true)
	c.Invalidate()
	if c.Access(10, false).Hit {
		t.Error("line survived invalidate")
	}
	if got := c.FlushDirty(); len(got) != 0 {
		t.Errorf("dirty lines after invalidate: %v", got)
	}
}

// Property: cache never holds more distinct lines than its capacity, and
// a working set that fits is fully retained after a warm-up pass.
func TestWorkingSetRetention(t *testing.T) {
	const lines = 1 << 12 / 64 // 64 lines
	c := mustCache(t, 1<<12, 64, 4)
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < lines; i++ {
			c.Access(i, false)
		}
	}
	s := c.Stats()
	// Second pass must be all hits.
	if s.Hits < lines {
		t.Errorf("hits = %d, want >= %d", s.Hits, lines)
	}
	if s.Misses != lines {
		t.Errorf("misses = %d, want %d (cold only)", s.Misses, lines)
	}
}

// Property: an access to line X immediately followed by another access to
// X always hits, regardless of history.
func TestRepeatAccessAlwaysHits(t *testing.T) {
	c := mustCache(t, 1<<14, 64, 8)
	rng := rand.New(rand.NewSource(1))
	prop := func(addrSeed uint32, writes bool) bool {
		// Random interleaving of traffic, then the double access.
		for i := 0; i < 50; i++ {
			c.Access(uint64(rng.Intn(100_000)), rng.Intn(2) == 0)
		}
		x := uint64(addrSeed)
		c.Access(x, writes)
		return c.Access(x, false).Hit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total writebacks never exceed total write accesses... (each
// writeback needs a distinct dirtying event).
func TestWritebackConservation(t *testing.T) {
	c := mustCache(t, 1<<10, 64, 2)
	rng := rand.New(rand.NewSource(2))
	writes := uint64(0)
	for i := 0; i < 100_000; i++ {
		w := rng.Intn(3) == 0
		if w {
			writes++
		}
		c.Access(uint64(rng.Intn(4096)), w)
	}
	if got := c.Stats().Writebacks; got > writes {
		t.Errorf("writebacks %d > writes %d", got, writes)
	}
}

func BenchmarkAccess(b *testing.B) {
	c, err := New(1<<20, 64, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 18))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], i&7 == 0)
	}
}
