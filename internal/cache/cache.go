// Package cache implements the last-level cache of the baseline system
// (Table II: 1 MB, 64 B lines): a set-associative, write-back,
// write-allocate cache with true-LRU replacement. The simulator's
// synthetic workloads are calibrated at the miss stream, so the cache is
// used for trace filtering (cmd/tracegen), the flush-on-idle transition
// (the OS flushes caches before self refresh, paper Section III-B), and
// examples.
package cache

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// ErrBadGeometry reports an invalid cache shape.
var ErrBadGeometry = errors.New("cache: invalid geometry")

// AccessResult describes the outcome of one access.
type AccessResult struct {
	// Hit is true when the line was present.
	Hit bool
	// Fill is the line address to fetch from memory on a miss.
	Fill uint64
	// Writeback, when WritebackValid, is the dirty victim to write back.
	Writeback      uint64
	WritebackValid bool
}

// Stats counts cache events.
type Stats struct {
	// Hits and Misses count accesses by outcome.
	Hits, Misses uint64
	// Writebacks counts dirty evictions.
	Writebacks uint64
}

// MissRate returns misses / accesses.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	// lastUse orders LRU within a set.
	lastUse uint64
}

// Cache is a set-associative write-back cache, indexed by line address.
// It is not safe for concurrent use.
type Cache struct {
	sets     [][]way
	assoc    int
	setBits  int
	useClock uint64
	stats    Stats
}

// New builds a cache of sizeBytes with the given line size and
// associativity.
func New(sizeBytes, lineBytes, assoc int) (*Cache, error) {
	if sizeBytes <= 0 || lineBytes <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("%w: size=%d line=%d assoc=%d", ErrBadGeometry, sizeBytes, lineBytes, assoc)
	}
	lines := sizeBytes / lineBytes
	if lines*lineBytes != sizeBytes || lines%assoc != 0 {
		return nil, fmt.Errorf("%w: %d lines not divisible into %d ways", ErrBadGeometry, lines, assoc)
	}
	nSets := lines / assoc
	if nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("%w: %d sets not a power of two", ErrBadGeometry, nSets)
	}
	sets := make([][]way, nSets)
	for i := range sets {
		sets[i] = make([]way, assoc)
	}
	return &Cache{
		sets:    sets,
		assoc:   assoc,
		setBits: bits.TrailingZeros(uint(nSets)),
	}, nil
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Access performs one access by line address. isWrite marks the line
// dirty on hit or fill (write-allocate).
func (c *Cache) Access(lineAddr uint64, isWrite bool) AccessResult {
	c.useClock++
	setIdx := lineAddr & uint64(len(c.sets)-1)
	tag := lineAddr >> c.setBits
	set := c.sets[setIdx]

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.useClock
			if isWrite {
				set[i].dirty = true
			}
			c.stats.Hits++
			return AccessResult{Hit: true}
		}
	}
	c.stats.Misses++

	// Choose a victim: invalid way first, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	res := AccessResult{Fill: lineAddr}
	if set[victim].valid && set[victim].dirty {
		res.Writeback = set[victim].tag<<c.setBits | setIdx
		res.WritebackValid = true
		c.stats.Writebacks++
	}
	set[victim] = way{tag: tag, valid: true, dirty: isWrite, lastUse: c.useClock}
	return res
}

// FlushDirty returns the line addresses of all dirty lines and marks them
// clean — the cache flush the OS performs before switching the memory to
// self refresh. The result is sorted for deterministic replay.
func (c *Cache) FlushDirty() []uint64 {
	var out []uint64
	for setIdx, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				out = append(out, set[i].tag<<c.setBits|uint64(setIdx))
				set[i].dirty = false
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Invalidate drops every line (used when modelling deep power down,
// where memory contents are lost and caches restart cold).
func (c *Cache) Invalidate() {
	for setIdx := range c.sets {
		for i := range c.sets[setIdx] {
			c.sets[setIdx][i] = way{}
		}
	}
}
