package golden

import (
	"math/rand"
	"testing"

	"repro/internal/bch"
	"repro/internal/ecc"
	"repro/internal/hamming"
	"repro/internal/line"
)

// newPair builds the optimized and reference codecs for one geometry.
func newPair(t *testing.T, tErr int, extended bool) (*bch.Code, *RefBCH) {
	t.Helper()
	var opt *bch.Code
	var err error
	if extended {
		opt, err = bch.NewExtended(tErr)
	} else {
		opt, err = bch.New(tErr)
	}
	if err != nil {
		t.Fatalf("bch.New(t=%d, ext=%v): %v", tErr, extended, err)
	}
	ref, err := NewRefBCH(tErr, extended)
	if err != nil {
		t.Fatalf("NewRefBCH(t=%d, ext=%v): %v", tErr, extended, err)
	}
	return opt, ref
}

// TestGeneratorsAgree pins the independently constructed reference
// generator polynomial to the optimized code's, for every t.
func TestGeneratorsAgree(t *testing.T) {
	for tErr := 1; tErr <= bch.MaxT; tErr++ {
		opt, ref := newPair(t, tErr, false)
		if !opt.Generator().Equal(ref.Generator()) {
			t.Errorf("t=%d: generator mismatch:\n  opt %s\n  ref %s",
				tErr, opt.Generator(), ref.Generator())
		}
		if opt.ParityBits() != ref.ParityBits() {
			t.Errorf("t=%d: parity bits: opt %d ref %d", tErr, opt.ParityBits(), ref.ParityBits())
		}
	}
}

// TestEncodeAgrees cross-checks the table-driven LFSR encoder against
// literal polynomial division on random lines, plain and extended.
func TestEncodeAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ext := range []bool{false, true} {
		for tErr := 1; tErr <= bch.MaxT; tErr++ {
			opt, ref := newPair(t, tErr, ext)
			for k := 0; k < 200; k++ {
				data := randomLine(rng)
				if got, want := opt.Encode(data), ref.Encode(data); got != want {
					t.Fatalf("t=%d ext=%v: Encode(%s) = %#x, reference %#x",
						tErr, ext, data, got, want)
				}
			}
		}
	}
}

// TestDecodeDifferentialT6 is the headline cross-check: the production
// ECC-6 geometry (plain and extended) against the reference decoder over
// the full randomized + adversarial corpus — more than 10k cases each.
func TestDecodeDifferentialT6(t *testing.T) {
	for _, ext := range []bool{false, true} {
		opt, ref := newPair(t, 6, ext)
		rng := rand.New(rand.NewSource(1))
		cases := BCHCorpus(opt, rng, 1300) // 9 weights x 1300 > 10k randomized
		if len(cases) < 10000 {
			t.Fatalf("corpus too small: %d cases", len(cases))
		}
		if bad := DiffBCH(opt, ref, cases); len(bad) != 0 {
			for i, m := range bad {
				if i == 5 {
					t.Errorf("... and %d more mismatches", len(bad)-5)
					break
				}
				t.Errorf("ext=%v: %s", ext, m)
			}
		}
	}
}

// TestDecodeDifferentialAllT spot-checks the remaining correction
// strengths with a smaller corpus each.
func TestDecodeDifferentialAllT(t *testing.T) {
	for tErr := 1; tErr <= bch.MaxT; tErr++ {
		if tErr == 6 {
			continue // covered exhaustively above
		}
		for _, ext := range []bool{false, true} {
			opt, ref := newPair(t, tErr, ext)
			rng := rand.New(rand.NewSource(int64(tErr)))
			cases := BCHCorpus(opt, rng, 40)
			if bad := DiffBCH(opt, ref, cases); len(bad) != 0 {
				t.Errorf("t=%d ext=%v: %d mismatches, first: %s", tErr, ext, len(bad), bad[0])
			}
		}
	}
}

// TestSECDEDDifferential cross-checks both production Hamming
// geometries — (72,64) word and (523,512) line — against the exhaustive
// single-flip-search reference over >10k cases each.
func TestSECDEDDifferential(t *testing.T) {
	for _, dataBits := range []int{64, 512} {
		opt, err := hamming.NewSECDED(dataBits)
		if err != nil {
			t.Fatalf("NewSECDED(%d): %v", dataBits, err)
		}
		ref, err := NewRefSECDED(dataBits)
		if err != nil {
			t.Fatalf("NewRefSECDED(%d): %v", dataBits, err)
		}
		if opt.CheckBits() != ref.CheckBits() {
			t.Fatalf("dataBits=%d: check width: opt %d ref %d", dataBits, opt.CheckBits(), ref.CheckBits())
		}
		nRandom := 2600 // 4 weights x 2600 > 10k randomized
		if dataBits == 512 {
			nRandom = 650 // the 512-bit reference search is ~40x slower per case
		}
		rng := rand.New(rand.NewSource(int64(dataBits)))
		cases := SECDEDCorpus(dataBits, rng, nRandom)
		if bad := DiffSECDED(opt, ref, cases); len(bad) != 0 {
			t.Errorf("dataBits=%d: %d mismatches, first: %s", dataBits, len(bad), bad[0])
		}
	}
}

// TestSECDEDEncodeAgrees pins the syndrome-accumulation encoder to the
// literal coverage-equation solver.
func TestSECDEDEncodeAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dataBits := range []int{64, 512} {
		opt, _ := hamming.NewSECDED(dataBits)
		ref, _ := NewRefSECDED(dataBits)
		words := (dataBits + 63) / 64
		for k := 0; k < 500; k++ {
			data := make([]uint64, words)
			for i := range data {
				data[i] = rng.Uint64()
			}
			got, err1 := opt.Encode(data)
			want, err2 := ref.Encode(data)
			if err1 != nil || err2 != nil {
				t.Fatalf("encode errors: %v, %v", err1, err2)
			}
			if got != want {
				t.Fatalf("dataBits=%d case %d: Encode = %#x, reference %#x", dataBits, k, got, want)
			}
		}
	}
}

// TestBatchMatchesScalar pins the worker-pool batch APIs — bch.Code
// EncodeBatch/DecodeBatch and ecc.Morphable EncodeBatch/DecodeBatch — to
// their scalar counterparts over a corrupted corpus, so the fork-join
// sharding can never change results.
func TestBatchMatchesScalar(t *testing.T) {
	opt, err := bch.NewExtended(6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cases := BCHCorpus(opt, rng, 30)

	data := make([]line.Line, len(cases))
	parity := make([]uint64, len(cases))
	for i, tc := range cases {
		data[i] = tc.Data
		parity[i] = tc.Parity
	}

	// EncodeBatch vs scalar Encode on the (corrupted) data lines.
	encOut := make([]uint64, len(data))
	opt.EncodeBatch(data, encOut)
	for i := range data {
		if want := opt.Encode(data[i]); encOut[i] != want {
			t.Fatalf("EncodeBatch[%d] = %#x, scalar %#x", i, encOut[i], want)
		}
	}

	// DecodeBatch vs scalar Decode.
	decOut := make([]line.Line, len(data))
	results := make([]bch.Result, len(data))
	opt.DecodeBatch(data, parity, decOut, results)
	for i := range data {
		wantLine, wantRes := opt.Decode(data[i], parity[i])
		if decOut[i] != wantLine || results[i] != wantRes {
			t.Fatalf("DecodeBatch[%d] = (%s, %+v), scalar (%s, %+v)",
				i, decOut[i], results[i], wantLine, wantRes)
		}
	}

	// Morphable batch round trip vs scalar path, strong mode.
	m, err := ecc.NewDefaultMorphable()
	if err != nil {
		t.Fatal(err)
	}
	spare := make([]uint64, len(data))
	m.EncodeBatch(data, ecc.ModeStrong, spare)
	for i := range data {
		if want := m.Encode(data[i], ecc.ModeStrong); spare[i] != want {
			t.Fatalf("Morphable.EncodeBatch[%d] = %#x, scalar %#x", i, spare[i], want)
		}
	}
	mOut := make([]line.Line, len(data))
	evs := make([]ecc.DecodeEvent, len(data))
	m.DecodeBatch(data, spare, mOut, evs)
	for i := range data {
		wantLine, wantEv := m.Decode(data[i], spare[i])
		if mOut[i] != wantLine || evs[i] != wantEv {
			t.Fatalf("Morphable.DecodeBatch[%d] = (%s, %+v), scalar (%s, %+v)",
				i, mOut[i], evs[i], wantLine, wantEv)
		}
	}
}
