package golden

import (
	"fmt"

	"repro/internal/hamming"
)

// RefSECDED is a brute-force reference for the extended Hamming SECDED
// codes in internal/hamming. The codeword is laid out in the classical
// truth-table form — positions 1..n with check bits at the powers of
// two, each check bit j covering every position whose binary index has
// bit j set — plus one overall parity bit. Encoding evaluates those
// coverage equations literally; decoding searches exhaustively for the
// unique codeword within Hamming distance one of the received word,
// with no syndrome shortcuts.
type RefSECDED struct {
	dataBits  int
	checkBits int // Hamming check bits, excluding the overall parity bit
	n         int // codeword length without the parity bit
}

// NewRefSECDED constructs the reference code over dataBits data bits.
func NewRefSECDED(dataBits int) (*RefSECDED, error) {
	if dataBits < 1 || dataBits > 4096 {
		return nil, fmt.Errorf("%w: %d", hamming.ErrBadDataBits, dataBits)
	}
	r := 2
	for (1<<r)-r-1 < dataBits {
		r++
	}
	return &RefSECDED{dataBits: dataBits, checkBits: r, n: dataBits + r}, nil
}

// DataBits returns the number of protected data bits.
func (s *RefSECDED) DataBits() int { return s.dataBits }

// CheckBits returns the total stored check width, including the overall
// parity bit.
func (s *RefSECDED) CheckBits() int { return s.checkBits + 1 }

func (s *RefSECDED) wordsNeeded() int { return (s.dataBits + 63) / 64 }

func getBit(v []uint64, i int) uint64 { return (v[i>>6] >> (uint(i) & 63)) & 1 }
func flipBit(v []uint64, i int)       { v[i>>6] ^= 1 << (uint(i) & 63) }
func setBit(v []uint64, i int, b uint64) {
	v[i>>6] = v[i>>6]&^(1<<(uint(i)&63)) | b<<(uint(i)&63)
}

// codeword lays the received word out by position: index p (1-based)
// holds either a data bit (non-power-of-two positions, in order) or a
// stored check bit (position 2^j holds check bit j). Index 0 is unused;
// index n+1 holds the overall parity bit.
func (s *RefSECDED) codeword(data []uint64, check uint64) []uint64 {
	w := make([]uint64, (s.n+2+63)/64)
	di := 0
	for p := 1; p <= s.n; p++ {
		if p&(p-1) == 0 { // power of two: check-bit position
			j := 0
			for 1<<j != p {
				j++
			}
			setBit(w, p, check>>uint(j)&1)
			continue
		}
		setBit(w, p, getBit(data, di))
		di++
	}
	setBit(w, s.n+1, check>>uint(s.checkBits)&1)
	return w
}

// consistent recomputes every check equation and the overall parity of
// a laid-out codeword from scratch.
func (s *RefSECDED) consistent(w []uint64) bool {
	for j := 0; 1<<j <= s.n; j++ {
		var sum uint64
		for p := 1; p <= s.n; p++ {
			if p>>uint(j)&1 == 1 {
				sum ^= getBit(w, p)
			}
		}
		if sum != 0 {
			return false
		}
	}
	var parity uint64
	for p := 1; p <= s.n+1; p++ {
		parity ^= getBit(w, p)
	}
	return parity == 0
}

// Encode computes the check word for data (ceil(dataBits/64)
// little-endian words), in the same layout as hamming.SECDED: bits
// [0,checkBits) are the Hamming check bits, bit checkBits the overall
// parity.
func (s *RefSECDED) Encode(data []uint64) (uint64, error) {
	if len(data) != s.wordsNeeded() {
		return 0, fmt.Errorf("%w: got %d, want %d", hamming.ErrBadInput, len(data), s.wordsNeeded())
	}
	var check uint64
	// Solve each check equation for the check bit it owns: check bit j
	// at position 2^j is the XOR of the other covered positions.
	w := s.codeword(data, 0)
	for j := 0; 1<<j <= s.n; j++ {
		var sum uint64
		for p := 1; p <= s.n; p++ {
			if p>>uint(j)&1 == 1 && p != 1<<j {
				sum ^= getBit(w, p)
			}
		}
		check |= sum << uint(j)
	}
	// Overall parity covers data and check bits.
	w = s.codeword(data, check)
	var parity uint64
	for p := 1; p <= s.n; p++ {
		parity ^= getBit(w, p)
	}
	return check | parity<<uint(s.checkBits), nil
}

// Decode verifies data against the stored check word by exhaustive
// search: if the received word is a codeword it is clean; otherwise the
// unique single-bit flip (over all codeword positions and the overall
// parity bit) that restores consistency identifies the error; if no
// such flip exists the word is uncorrectable. Single data-bit errors
// are repaired in place, matching hamming.SECDED.Decode.
func (s *RefSECDED) Decode(data []uint64, check uint64) (hamming.Result, error) {
	if len(data) != s.wordsNeeded() {
		return hamming.Result{}, fmt.Errorf("%w: got %d, want %d", hamming.ErrBadInput, len(data), s.wordsNeeded())
	}
	w := s.codeword(data, check)
	if s.consistent(w) {
		return hamming.Result{}, nil
	}
	for p := 1; p <= s.n+1; p++ {
		flipBit(w, p)
		if s.consistent(w) {
			// Map the repaired position back to a data index, if it is one.
			if p <= s.n && p&(p-1) != 0 {
				di := 0
				for q := 1; q < p; q++ {
					if q&(q-1) != 0 {
						di++
					}
				}
				flipBit(data, di)
			}
			return hamming.Result{CorrectedBits: 1}, nil
		}
		flipBit(w, p)
	}
	return hamming.Result{Uncorrectable: true}, nil
}
