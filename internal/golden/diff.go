package golden

import (
	"fmt"
	"math/rand"

	"repro/internal/bch"
	"repro/internal/hamming"
	"repro/internal/line"
)

// BCHCodec is the observable contract shared by the optimized bch.Code
// and the RefBCH reference: systematic encode of one line, and decode of
// a received (data, parity) pair.
type BCHCodec interface {
	Encode(data line.Line) uint64
	Decode(data line.Line, parity uint64) (line.Line, bch.Result)
	ParityBits() int
	T() int
	Extended() bool
}

// BCHCase is one differential input: a received word, possibly corrupted
// away from any codeword, plus a label describing how it was built.
type BCHCase struct {
	Name   string
	Data   line.Line
	Parity uint64
}

// flipCodewordBit flips position pos of a received word. Positions
// [0, deg(g)) are base parity bits, [deg(g), deg(g)+512) are data bits,
// and for extended codes the last position is the overall parity bit,
// which the parity word stores directly above the base parity.
func flipCodewordBit(c BCHCodec, data *line.Line, parity *uint64, pos int) {
	baseParity := c.ParityBits()
	if c.Extended() {
		baseParity--
	}
	switch {
	case pos < baseParity:
		*parity ^= uint64(1) << pos
	case pos < baseParity+line.Bits:
		*data = data.FlipBit(pos - baseParity)
	default:
		*parity ^= uint64(1) << baseParity // extension bit
	}
}

// codewordBits returns the number of flippable positions in a received
// word, including the extension bit when present.
func codewordBits(c BCHCodec) int {
	return c.ParityBits() + line.Bits
}

func randomLine(rng *rand.Rand) line.Line {
	var ln line.Line
	for w := range ln {
		ln[w] = rng.Uint64()
	}
	return ln
}

// BCHCorpus builds the differential corpus for a codec: nRandom random
// cases at every error weight 0..t+2, plus deterministic adversarial
// families — burst errors of length 2..2t spanning the parity/data
// boundary, extension-bit flips alone and stacked on 1..t+1 data errors,
// and all-zero / all-ones extremes.
func BCHCorpus(c BCHCodec, rng *rand.Rand, nRandom int) []BCHCase {
	var cases []BCHCase
	bits := codewordBits(c)
	t := c.T()

	// Randomized sweep: for each weight w in 0..t+2, nRandom received
	// words built from a fresh codeword with w distinct flipped positions.
	for w := 0; w <= t+2; w++ {
		for k := 0; k < nRandom; k++ {
			data := randomLine(rng)
			parity := c.Encode(data)
			for _, pos := range rng.Perm(bits)[:w] {
				flipCodewordBit(c, &data, &parity, pos)
			}
			cases = append(cases, BCHCase{
				Name:   fmt.Sprintf("weight%d/%d", w, k),
				Data:   data,
				Parity: parity,
			})
		}
	}

	// Burst errors: contiguous runs, placed both inside the data, inside
	// the parity, and across the parity/data boundary.
	baseParity := c.ParityBits()
	if c.Extended() {
		baseParity--
	}
	for blen := 2; blen <= 2*t && blen <= bits; blen++ {
		starts := []int{0, baseParity - blen/2, baseParity, baseParity + line.Bits - blen, rng.Intn(bits - blen + 1)}
		for _, start := range starts {
			if start < 0 || start+blen > bits {
				continue
			}
			data := randomLine(rng)
			parity := c.Encode(data)
			for i := 0; i < blen; i++ {
				flipCodewordBit(c, &data, &parity, start+i)
			}
			cases = append(cases, BCHCase{
				Name:   fmt.Sprintf("burst%d@%d", blen, start),
				Data:   data,
				Parity: parity,
			})
		}
	}

	// Extension-bit adversaries: the overall parity bit flipped alone and
	// together with w data errors, exercising the errParity/wantParity
	// consistency check for both agreeing and disagreeing weights.
	if c.Extended() {
		for w := 0; w <= t+1; w++ {
			data := randomLine(rng)
			parity := c.Encode(data)
			parity ^= uint64(1) << baseParity
			for _, pos := range rng.Perm(line.Bits)[:w] {
				data = data.FlipBit(pos)
			}
			cases = append(cases, BCHCase{
				Name:   fmt.Sprintf("extflip+%d", w),
				Data:   data,
				Parity: parity,
			})
		}
	}

	// Extremes: all-zero and all-ones lines, clean and with garbage parity.
	var zero, ones line.Line
	for w := range ones {
		ones[w] = ^uint64(0)
	}
	for _, ln := range []line.Line{zero, ones} {
		cases = append(cases,
			BCHCase{Name: "extreme/clean", Data: ln, Parity: c.Encode(ln)},
			BCHCase{Name: "extreme/garbage-parity", Data: ln, Parity: rng.Uint64()},
		)
	}
	return cases
}

// BCHMismatch records one disagreement between the optimized and
// reference codecs.
type BCHMismatch struct {
	Case      BCHCase
	OptData   line.Line
	RefData   line.Line
	OptResult bch.Result
	RefResult bch.Result
}

func (m BCHMismatch) String() string {
	return fmt.Sprintf("case %s: opt=(%+v, %s) ref=(%+v, %s)",
		m.Case.Name, m.OptResult, m.OptData, m.RefResult, m.RefData)
}

// DiffBCH decodes every case with both codecs and collects mismatches in
// the public contract: the returned line and the Result must be
// identical, bit for bit, on every input — including uncorrectable ones,
// where both must hand back the original data unchanged.
func DiffBCH(opt, ref BCHCodec, cases []BCHCase) []BCHMismatch {
	var bad []BCHMismatch
	for _, tc := range cases {
		optData, optRes := opt.Decode(tc.Data, tc.Parity)
		refData, refRes := ref.Decode(tc.Data, tc.Parity)
		if optData != refData || optRes != refRes {
			bad = append(bad, BCHMismatch{
				Case: tc, OptData: optData, RefData: refData,
				OptResult: optRes, RefResult: refRes,
			})
		}
	}
	return bad
}

// SECDEDCase is one differential input for the Hamming codes.
type SECDEDCase struct {
	Name  string
	Data  []uint64
	Check uint64
}

// SECDEDCorpus builds the corpus for a SECDED geometry: nRandom random
// cases at every error weight 0..3 over data, check and parity bits,
// plus deterministic check-bit and parity-bit adversaries.
func SECDEDCorpus(dataBits int, rng *rand.Rand, nRandom int) []SECDEDCase {
	ref, err := NewRefSECDED(dataBits)
	if err != nil {
		// invariant: dataBits comes from the validated test table.
		panic(err)
	}
	words := (dataBits + 63) / 64
	checkW := ref.CheckBits()
	total := dataBits + checkW

	var cases []SECDEDCase
	for w := 0; w <= 3; w++ {
		for k := 0; k < nRandom; k++ {
			data := make([]uint64, words)
			for i := range data {
				data[i] = rng.Uint64()
			}
			if rem := uint(dataBits) & 63; rem != 0 {
				data[words-1] &= (1 << rem) - 1
			}
			check, err := ref.Encode(data)
			if err != nil {
				// invariant: the reference encoder accepts every word-aligned input.
				panic(err)
			}
			for _, pos := range rng.Perm(total)[:w] {
				if pos < dataBits {
					flipBit(data, pos)
				} else {
					check ^= uint64(1) << (pos - dataBits)
				}
			}
			cases = append(cases, SECDEDCase{
				Name:  fmt.Sprintf("weight%d/%d", w, k),
				Data:  data,
				Check: check,
			})
		}
	}

	// Every single check-bit and parity-bit flip on a fixed pattern.
	for cb := 0; cb < checkW; cb++ {
		data := make([]uint64, words)
		for i := range data {
			data[i] = 0xA5A5A5A5A5A5A5A5
		}
		if rem := uint(dataBits) & 63; rem != 0 {
			data[words-1] &= (1 << rem) - 1
		}
		check, err := ref.Encode(data)
		if err != nil {
			// invariant: the reference encoder accepts every word-aligned input.
			panic(err)
		}
		cases = append(cases, SECDEDCase{
			Name:  fmt.Sprintf("checkflip%d", cb),
			Data:  data,
			Check: check ^ uint64(1)<<cb,
		})
	}
	return cases
}

// SECDEDMismatch records one disagreement between the optimized and
// reference SECDED decoders.
type SECDEDMismatch struct {
	Case      SECDEDCase
	OptData   []uint64
	RefData   []uint64
	OptResult hamming.Result
	RefResult hamming.Result
}

func (m SECDEDMismatch) String() string {
	return fmt.Sprintf("case %s: opt=(%+v, %x) ref=(%+v, %x)",
		m.Case.Name, m.OptResult, m.OptData, m.RefResult, m.RefData)
}

// DiffSECDED decodes every case with both the optimized hamming.SECDED
// and the reference model, comparing the Result and the (possibly
// repaired in place) data words.
func DiffSECDED(opt *hamming.SECDED, ref *RefSECDED, cases []SECDEDCase) []SECDEDMismatch {
	var bad []SECDEDMismatch
	for _, tc := range cases {
		optData := append([]uint64(nil), tc.Data...)
		refData := append([]uint64(nil), tc.Data...)
		optRes, err1 := opt.Decode(optData, tc.Check)
		refRes, err2 := ref.Decode(refData, tc.Check)
		if err1 != nil || err2 != nil {
			bad = append(bad, SECDEDMismatch{Case: tc, OptData: optData, RefData: refData, OptResult: optRes, RefResult: refRes})
			continue
		}
		same := optRes == refRes
		for i := range optData {
			if optData[i] != refData[i] {
				same = false
			}
		}
		if !same {
			bad = append(bad, SECDEDMismatch{
				Case: tc, OptData: optData, RefData: refData,
				OptResult: optRes, RefResult: refRes,
			})
		}
	}
	return bad
}
