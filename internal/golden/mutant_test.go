package golden

import (
	"math/rand"
	"testing"

	"repro/internal/bch"
	"repro/internal/line"
)

// mutantBCH wraps a correct codec and plants one of several deliberate
// bugs, standing in for the kind of regression an aggressive rewrite of
// internal/bch could introduce. Each mutant must be caught by DiffBCH —
// if one survives, the differential harness has a blind spot.
type mutantBCH struct {
	BCHCodec
	kind string
}

func (m *mutantBCH) Decode(data line.Line, parity uint64) (line.Line, bch.Result) {
	fixed, res := m.BCHCodec.Decode(data, parity)
	switch m.kind {
	case "swallow-uncorrectable":
		// Report detected-uncorrectable words as clean.
		if res.Uncorrectable {
			return data, bch.Result{}
		}
	case "off-by-one-count":
		// Miscount multi-bit corrections.
		if res.CorrectedBits > 1 {
			res.CorrectedBits--
		}
	case "skip-last-flip":
		// Correct all but the highest error position (silent corruption).
		if res.CorrectedBits > 0 && !res.Uncorrectable {
			if diff := data.Diff(fixed); len(diff) > 0 {
				fixed = fixed.FlipBit(diff[len(diff)-1])
			}
		}
	case "ignore-extension-bit":
		// Treat the codeword as unextended: re-decode with the extension
		// bit forced to the recomputed value, losing t+1 detection.
		if res.Uncorrectable {
			clean := m.BCHCodec.Encode(data)
			if fixed2, res2 := m.BCHCodec.Decode(data, parity&^(1<<uint(m.ParityBits()-1))|clean&(1<<uint(m.ParityBits()-1))); !res2.Uncorrectable {
				return fixed2, res2
			}
		}
	}
	return fixed, res
}

// TestHarnessCatchesPlantedMutants runs each mutant through the same
// corpus the real differential test uses and requires at least one
// mismatch per mutant.
func TestHarnessCatchesPlantedMutants(t *testing.T) {
	opt, ref := newPair(t, 6, true)
	rng := rand.New(rand.NewSource(99))
	cases := BCHCorpus(opt, rng, 60)

	// Sanity: the unmutated codec passes.
	if bad := DiffBCH(opt, ref, cases); len(bad) != 0 {
		t.Fatalf("clean codec disagrees with reference: %s", bad[0])
	}

	for _, kind := range []string{
		"swallow-uncorrectable",
		"off-by-one-count",
		"skip-last-flip",
		"ignore-extension-bit",
	} {
		mut := &mutantBCH{BCHCodec: opt, kind: kind}
		if bad := DiffBCH(mut, ref, cases); len(bad) == 0 {
			t.Errorf("mutant %q survived the differential harness", kind)
		} else {
			t.Logf("mutant %q caught: %d mismatches, e.g. %s", kind, len(bad), bad[0].Case.Name)
		}
	}
}
