package golden

import (
	"fmt"

	"repro/internal/bch"
	"repro/internal/gf2"
	"repro/internal/line"
)

// RefBCH is a naive t-error-correcting binary BCH code for line.Bits
// data bits, constructed independently of internal/bch from the same
// first principles: the smallest GF(2^m) with room for data and parity,
// and a generator polynomial that is the LCM of the minimal polynomials
// of alpha^1..alpha^2t. Encoding is literal polynomial division;
// decoding is the textbook syndrome / Berlekamp–Massey / Chien pipeline
// with per-bit field arithmetic and no precomputed tables.
//
// The decision points of Decode — all-zero syndromes, the
// extension-bit-only single error, locator degree > t, missing Chien
// roots, the extended-parity consistency check, and the post-correction
// syndrome recheck — mirror the optimized decoder's contract exactly,
// so the differential driver can require bit-identical (data, Result)
// agreement on every input, not just on correctable ones.
type RefBCH struct {
	field      *gf2.Field
	t          int
	n          int // natural code length 2^m - 1
	parityBits int // deg(g), excluding the extension bit
	extended   bool
	gen        gf2.Poly2
}

// NewRefBCH constructs the reference code.
func NewRefBCH(t int, extended bool) (*RefBCH, error) {
	if t < 1 || t > bch.MaxT {
		return nil, fmt.Errorf("%w: t=%d", bch.ErrBadT, t)
	}
	m := 0
	for cand := 4; cand <= 16; cand++ {
		if line.Bits+cand*t <= (1<<cand)-1 {
			m = cand
			break
		}
	}
	if m == 0 {
		return nil, bch.ErrNoField
	}
	f, err := gf2.NewField(m)
	if err != nil {
		return nil, err
	}
	polys := make([]gf2.Poly2, 0, t)
	for i := 1; i <= 2*t; i += 2 {
		polys = append(polys, f.MinimalPoly(i))
	}
	gen := gf2.LCM2(polys...)
	return &RefBCH{
		field:      f,
		t:          t,
		n:          f.Order(),
		parityBits: gen.Degree(),
		extended:   extended,
		gen:        gen,
	}, nil
}

// T returns the correction capability.
func (r *RefBCH) T() int { return r.t }

// Extended reports whether the code carries an overall parity bit.
func (r *RefBCH) Extended() bool { return r.extended }

// Generator returns the generator polynomial g(x).
func (r *RefBCH) Generator() gf2.Poly2 { return r.gen }

// ParityBits returns the total parity width, including the extension
// bit when the code is extended.
func (r *RefBCH) ParityBits() int {
	if r.extended {
		return r.parityBits + 1
	}
	return r.parityBits
}

// Encode computes the parity of a line by polynomial division: the data
// polynomial D(x) (data bit i at exponent parityBits+i) is reduced
// modulo g(x), and the remainder is the parity. When extended, the
// overall parity over data and base parity occupies bit parityBits.
func (r *RefBCH) Encode(data line.Line) uint64 {
	// D(x) * x^parityBits is the line's bit vector shifted up by deg(g).
	msg := gf2.Poly2(data[:]).Shift(r.parityBits)
	var parity uint64
	if msg != nil { // the all-zero line divides exactly
		rem, err := msg.Mod(r.gen)
		if err != nil {
			// invariant: g(x) is never zero.
			panic(err)
		}
		if len(rem) > 0 {
			parity = rem[0] // deg(g) <= 60 bits always fit the first word
		}
	}
	if r.extended {
		ones := data.PopCount() + popcount64(parity)
		parity |= uint64(ones&1) << r.parityBits
	}
	return parity
}

func popcount64(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// syndromes evaluates S_1..S_2t of the received word with per-bit field
// arithmetic: S_j = sum over set bits of alpha^(j*e), where data bit i
// sits at codeword exponent parityBits+i and parity bit k at exponent k.
func (r *RefBCH) syndromes(data line.Line, parity uint64) []uint16 {
	f := r.field
	synd := make([]uint16, 2*r.t)
	for j := 1; j <= 2*r.t; j++ {
		var acc uint16
		for i := 0; i < line.Bits; i++ {
			if data.Bit(i) == 1 {
				acc = f.Add(acc, f.Alpha(j*(r.parityBits+i)))
			}
		}
		for k := 0; k < r.parityBits; k++ {
			if parity>>uint(k)&1 == 1 {
				acc = f.Add(acc, f.Alpha(j*k))
			}
		}
		synd[j-1] = acc
	}
	return synd
}

// berlekampMassey runs the textbook iteration over slices, returning the
// locator coefficients (lambda[0] == 1) or ok=false when the implied
// error count exceeds t.
func (r *RefBCH) berlekampMassey(synd []uint16) ([]uint16, bool) {
	f := r.field
	nSyn := len(synd)
	lambda := make([]uint16, nSyn+1)
	prev := make([]uint16, nSyn+1)
	lambda[0], prev[0] = 1, 1
	l, m := 0, 1
	b := uint16(1)
	for rr := 0; rr < nSyn; rr++ {
		d := synd[rr]
		for i := 1; i <= l; i++ {
			d = f.Add(d, f.Mul(lambda[i], synd[rr-i]))
		}
		if d == 0 {
			m++
			continue
		}
		coef, err := f.Div(d, b)
		if err != nil {
			return nil, false
		}
		if 2*l <= rr {
			tmp := append([]uint16(nil), lambda...)
			for i := 0; i+m < len(lambda); i++ {
				lambda[i+m] = f.Add(lambda[i+m], f.Mul(coef, prev[i]))
			}
			l = rr + 1 - l
			prev = tmp
			b = d
			m = 1
		} else {
			for i := 0; i+m < len(lambda); i++ {
				lambda[i+m] = f.Add(lambda[i+m], f.Mul(coef, prev[i]))
			}
			m++
		}
	}
	if l > r.t {
		return nil, false
	}
	return lambda[:l+1], true
}

// chienSearch finds error positions by evaluating the locator at every
// candidate point with Horner's rule: position i is in error when
// Lambda(alpha^-i) == 0. It returns ok=false unless deg(Lambda) distinct
// roots fall inside the shortened length.
func (r *RefBCH) chienSearch(lambda []uint16) ([]int, bool) {
	f := r.field
	degL := len(lambda) - 1
	if degL == 0 {
		return nil, false
	}
	length := r.parityBits + line.Bits
	var positions []int
	for i := 0; i < length; i++ {
		x := f.Alpha((r.n - i) % r.n) // alpha^-i
		if f.Eval(lambda, x) == 0 {
			positions = append(positions, i)
		}
	}
	return positions, len(positions) == degL
}

// Decode checks and repairs a received (data, parity) pair, mirroring
// the optimized decoder's observable contract (see the type comment).
func (r *RefBCH) Decode(data line.Line, parity uint64) (line.Line, bch.Result) {
	deg := r.parityBits
	extBit := uint64(0)
	if r.extended {
		extBit = (parity >> deg) & 1
		parity &= (uint64(1) << deg) - 1
	}

	synd := r.syndromes(data, parity)
	allZero := true
	for _, s := range synd {
		if s != 0 {
			allZero = false
			break
		}
	}
	extOK := true
	if r.extended {
		ones := data.PopCount() + popcount64(parity)
		extOK = uint64(ones&1) == extBit
	}
	if allZero {
		if !extOK {
			return data, bch.Result{CorrectedBits: 1}
		}
		return data, bch.Result{}
	}

	lambda, ok := r.berlekampMassey(synd)
	if !ok {
		return data, bch.Result{Uncorrectable: true}
	}
	positions, ok := r.chienSearch(lambda)
	if !ok {
		return data, bch.Result{Uncorrectable: true}
	}
	if r.extended {
		errParity := uint64(len(positions)) & 1
		wantParity := uint64(0)
		if !extOK {
			wantParity = 1
		}
		if errParity != wantParity {
			return data, bch.Result{Uncorrectable: true}
		}
	}

	corrected := data
	fixedParity := parity
	for _, pos := range positions {
		if pos >= deg {
			corrected = corrected.FlipBit(pos - deg)
		} else {
			fixedParity ^= uint64(1) << pos
		}
	}
	for _, s := range r.syndromes(corrected, fixedParity) {
		if s != 0 {
			return data, bch.Result{Uncorrectable: true}
		}
	}
	return corrected, bch.Result{CorrectedBits: len(positions)}
}
