// Package golden holds slow, obviously-correct reference implementations
// of the repository's error-correcting codes, plus differential drivers
// that cross-check the optimized codecs against them.
//
// The optimized packages (internal/bch, internal/hamming, internal/ecc,
// internal/batch) earn their speed with fused syndrome passes, LFSR
// byte tables, dense constant-multiplication tables and stack-resident
// scratch arrays. None of that appears here: RefBCH encodes by literal
// polynomial division over GF(2) (gf2.Poly2.Mod), evaluates syndromes
// bit by bit with textbook field arithmetic, and runs an exhaustive
// Chien scan; RefSECDED decodes by brute-force single-bit-flip search
// over the full codeword. The reference models are therefore easy to
// audit against the paper (Section III-D/E) and against Lin & Costello,
// and the differential drivers in diff.go pin the optimized codecs to
// them over randomized and adversarial inputs: error weights 0..t+2,
// burst errors, and extension-bit flips.
//
// The drivers deliberately compare only the public contract — the
// (data, Result) pair returned by Decode and the parity word returned by
// Encode — so internal/bch remains free to reorganize its pipeline as
// long as observable behaviour is preserved.
package golden
