package ecc

// CostModel captures the hardware cost of one codec's encoder/decoder pair
// as the paper models it (Section III-E): decode latency is on the memory
// critical path; encode is a shallow XOR tree and completes in one cycle.
// Latency is in CPU cycles (1.6 GHz); energy per operation in picojoules;
// area in two-input-gate equivalents.
type CostModel struct {
	// EncodeCycles is the encoder latency in CPU cycles.
	EncodeCycles int
	// DecodeCycles is the decoder latency in CPU cycles.
	DecodeCycles int
	// EncodeEnergyPJ is the energy per line encode.
	EncodeEnergyPJ float64
	// DecodeEnergyPJ is the energy per line decode.
	DecodeEnergyPJ float64
	// AreaGates is the decoder logic size in gate equivalents.
	AreaGates int
}

// Cost models from the paper's estimates. The ECC-6 decode latency of 30
// cycles is the default the evaluation uses; Fig. 12 sweeps 15..60.
const (
	// DefaultSECDEDDecodeCycles is the weak-code decode latency.
	DefaultSECDEDDecodeCycles = 2
	// DefaultStrongDecodeCycles is the ECC-6 decode latency.
	DefaultStrongDecodeCycles = 30
)

// DefaultCost returns the paper's cost estimate for a codec:
//   - SECDED: ~3K XOR gates, 2-cycle decode;
//   - ECC-t (BCH): ~100K-200K gates, 30-cycle decode, ~40 pJ per decode
//     (vs ~12 nJ for the DRAM line read itself);
//   - none: free.
//
// Energy and area scale linearly with t, following the cited Chien-search
// complexity analysis.
func DefaultCost(c Codec) CostModel {
	switch c.(type) {
	case None:
		return CostModel{}
	case *LineSECDED, *WordSECDED:
		return CostModel{
			EncodeCycles:   1,
			DecodeCycles:   DefaultSECDEDDecodeCycles,
			EncodeEnergyPJ: 1,
			DecodeEnergyPJ: 2,
			AreaGates:      3_000,
		}
	default:
		t := c.CorrectBits()
		return CostModel{
			EncodeCycles:   1,
			DecodeCycles:   DefaultStrongDecodeCycles,
			EncodeEnergyPJ: 1 + float64(t),
			DecodeEnergyPJ: 40 * float64(t) / 6,
			AreaGates:      25_000 * t,
		}
	}
}
