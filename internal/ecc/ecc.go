// Package ecc provides a uniform interface over the error-correcting codes
// used by the simulator (none, word-granularity SECDED, line-granularity
// SECDED, BCH ECC-1..8), the hardware cost model for their encoders and
// decoders (paper Section III-E), and the morphable line layout of Fig. 6
// that packs the ECC-mode bits and either code into the 64 spare bits of a
// (72,64)-provisioned memory line.
package ecc

import (
	"errors"
	"fmt"

	"repro/internal/bch"
	"repro/internal/hamming"
	"repro/internal/line"
)

// Errors returned by codec construction and lookup.
var (
	ErrUnknownCodec = errors.New("ecc: unknown codec name")
	ErrTooWide      = errors.New("ecc: codec does not fit the morphable layout")
)

// Result describes the outcome of a decode, shared across codecs. It is
// an alias of bch.Result so the zero-copy batch decode paths can hand
// bch result slices straight through; the hamming result type has the
// same shape and converts.
type Result = bch.Result

// Codec is a line-granularity error-correcting code: it protects one
// 64-byte cache line with at most 64 bits of stored check state.
// Implementations are immutable and safe for concurrent use.
type Codec interface {
	// Name is a short stable identifier (e.g. "secded-line", "ecc6").
	Name() string
	// CorrectBits is the guaranteed per-line correction capability t.
	CorrectBits() int
	// DetectBits is the guaranteed detection capability (>= CorrectBits).
	DetectBits() int
	// StorageBits is the stored check width per line.
	StorageBits() int
	// Encode computes the check word for a line.
	Encode(data line.Line) uint64
	// Decode verifies and repairs a line against its check word.
	Decode(data line.Line, check uint64) (line.Line, Result)
}

// BatchCodec is the optional bulk interface a Codec may implement to
// encode or decode many independent lines at once (internally fanned out
// over a worker pool). The sweep layers (ECC-Upgrade, scrub, integrity
// Monte Carlo) probe for it and fall back to per-line calls otherwise.
type BatchCodec interface {
	Codec
	// EncodeBatch computes check words for each line: out[i] = Encode(data[i]).
	EncodeBatch(data []line.Line, out []uint64)
	// DecodeBatch decodes each (data[i], check[i]) pair into out[i],
	// results[i]. out may alias data.
	DecodeBatch(data []line.Line, check []uint64, out []line.Line, results []Result)
}

// Screener is the optional fast-screen interface a Codec may implement:
// a cheap, allocation-free check that (data, check) is a clean stored
// codeword — true exactly when Decode would return a zero Result. Sweep
// loops use it to reserve the scalar decoder for the rare lines whose
// screen fails.
type Screener interface {
	Codec
	// ScreenClean reports whether Decode(data, check) would return a
	// zero Result (no correction, no detection).
	ScreenClean(data line.Line, check uint64) bool
}

// Compile-time interface compliance checks.
var (
	_ Codec      = None{}
	_ Codec      = (*LineSECDED)(nil)
	_ Codec      = (*WordSECDED)(nil)
	_ BatchCodec = (*BCH)(nil)
	_ Screener   = None{}
	_ Screener   = (*LineSECDED)(nil)
	_ Screener   = (*WordSECDED)(nil)
	_ Screener   = (*BCH)(nil)
)

// None is the no-protection codec: zero storage, zero correction. It
// models the paper's "no ECC" baseline.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// CorrectBits implements Codec.
func (None) CorrectBits() int { return 0 }

// DetectBits implements Codec.
func (None) DetectBits() int { return 0 }

// StorageBits implements Codec.
func (None) StorageBits() int { return 0 }

// Encode implements Codec.
func (None) Encode(line.Line) uint64 { return 0 }

// Decode implements Codec.
func (None) Decode(data line.Line, _ uint64) (line.Line, Result) {
	return data, Result{}
}

// ScreenClean implements Screener: without protection every line is
// (vacuously) clean, matching Decode's always-zero Result.
func (None) ScreenClean(line.Line, uint64) bool { return true }

// LineSECDED protects the whole 64-byte line with one SECDED code:
// 11 check bits, the MECC weak code of Fig. 6(ii).
type LineSECDED struct {
	code *hamming.SECDED
}

// NewLineSECDED constructs the line-granularity SECDED codec.
func NewLineSECDED() (*LineSECDED, error) {
	c, err := hamming.NewSECDED(line.Bits)
	if err != nil {
		return nil, fmt.Errorf("ecc: line secded: %w", err)
	}
	return &LineSECDED{code: c}, nil
}

// Name implements Codec.
func (l *LineSECDED) Name() string { return "secded-line" }

// CorrectBits implements Codec.
func (l *LineSECDED) CorrectBits() int { return 1 }

// DetectBits implements Codec.
func (l *LineSECDED) DetectBits() int { return 2 }

// StorageBits implements Codec.
func (l *LineSECDED) StorageBits() int { return l.code.CheckBits() }

// Encode implements Codec.
func (l *LineSECDED) Encode(data line.Line) uint64 {
	buf := [8]uint64(data)
	chk, err := l.code.Encode(buf[:])
	if err != nil {
		// invariant: the buffer length always matches.
		panic(err)
	}
	return chk
}

// Decode implements Codec.
func (l *LineSECDED) Decode(data line.Line, check uint64) (line.Line, Result) {
	buf := [8]uint64(data)
	res, err := l.code.Decode(buf[:], check)
	if err != nil {
		// invariant: the buffer length always matches.
		panic(err)
	}
	return line.Line(buf), Result(res)
}

// ScreenClean implements Screener via the word-parallel Hamming screen.
//
//meccvet:hotpath
func (l *LineSECDED) ScreenClean(data line.Line, check uint64) bool {
	buf := [8]uint64(data)
	return l.code.ScreenClean(buf[:], check)
}

// WordSECDED applies the conventional (72,64) code independently to each of
// the eight words of a line (Fig. 6(i)): 64 check bits total, corrects one
// error per word.
type WordSECDED struct {
	code *hamming.Word72
}

// NewWordSECDED constructs the word-granularity SECDED codec.
func NewWordSECDED() (*WordSECDED, error) {
	c, err := hamming.NewWord72()
	if err != nil {
		return nil, fmt.Errorf("ecc: word secded: %w", err)
	}
	return &WordSECDED{code: c}, nil
}

// Name implements Codec.
func (w *WordSECDED) Name() string { return "secded-word" }

// CorrectBits implements Codec. The guarantee is one error anywhere in the
// line (one per word is opportunistic, not guaranteed).
func (w *WordSECDED) CorrectBits() int { return 1 }

// DetectBits implements Codec.
func (w *WordSECDED) DetectBits() int { return 2 }

// StorageBits implements Codec.
func (w *WordSECDED) StorageBits() int { return 64 }

// Encode implements Codec.
func (w *WordSECDED) Encode(data line.Line) uint64 {
	var out uint64
	for i, word := range data {
		out |= uint64(w.code.Encode(word)) << (8 * i)
	}
	return out
}

// Decode implements Codec.
func (w *WordSECDED) Decode(data line.Line, check uint64) (line.Line, Result) {
	var agg Result
	for i, word := range data {
		fixed, res := w.code.Decode(word, uint8(check>>(8*i)))
		if res.Uncorrectable {
			return data, Result{Uncorrectable: true}
		}
		agg.CorrectedBits += res.CorrectedBits
		data[i] = fixed
	}
	return data, agg
}

// ScreenClean implements Screener: each word's re-encode must reproduce
// its stored check byte, exactly the per-word zero-Result condition.
//
//meccvet:hotpath
func (w *WordSECDED) ScreenClean(data line.Line, check uint64) bool {
	return w.Encode(data) == check
}

// BCH wraps a t-error-correcting BCH code as a Codec (the strong ECC).
type BCH struct {
	code *bch.Code
	name string
}

// NewBCH constructs an ECC-t codec. When extended is true the code carries
// an overall parity bit raising detection to t+1 (the paper's 61-bit
// "6-correct, 7-detect" option).
func NewBCH(t int, extended bool) (*BCH, error) {
	var (
		c   *bch.Code
		err error
	)
	if extended {
		c, err = bch.NewExtended(t)
	} else {
		c, err = bch.New(t)
	}
	if err != nil {
		return nil, fmt.Errorf("ecc: bch: %w", err)
	}
	return &BCH{code: c, name: fmt.Sprintf("ecc%d", t)}, nil
}

// Name implements Codec.
func (b *BCH) Name() string { return b.name }

// CorrectBits implements Codec.
func (b *BCH) CorrectBits() int { return b.code.T() }

// DetectBits implements Codec.
func (b *BCH) DetectBits() int {
	if b.code.Extended() {
		return b.code.T() + 1
	}
	return b.code.T()
}

// StorageBits implements Codec.
func (b *BCH) StorageBits() int { return b.code.ParityBits() }

// Encode implements Codec.
func (b *BCH) Encode(data line.Line) uint64 { return b.code.Encode(data) }

// Decode implements Codec.
func (b *BCH) Decode(data line.Line, check uint64) (line.Line, Result) {
	fixed, res := b.code.Decode(data, check)
	return fixed, Result(res)
}

// ScreenClean implements Screener via the table re-encode screen.
//
//meccvet:hotpath
func (b *BCH) ScreenClean(data line.Line, check uint64) bool {
	return b.code.ScreenClean(data, check)
}

// EncodeBatch implements BatchCodec by delegating to the BCH worker-pool
// encoder.
func (b *BCH) EncodeBatch(data []line.Line, out []uint64) {
	b.code.EncodeBatch(data, out)
}

// DecodeBatch implements BatchCodec by delegating to the BCH worker-pool
// decoder (Result is an alias of bch.Result, so no conversion copy).
func (b *BCH) DecodeBatch(data []line.Line, check []uint64, out []line.Line, results []Result) {
	b.code.DecodeBatch(data, check, out, results)
}

// ByName constructs a codec from its registry name: "none", "secded-word",
// "secded-line", or "ecc1".."ecc6" (append "x" for the extended variant,
// e.g. "ecc6x").
func ByName(name string) (Codec, error) {
	switch name {
	case "none":
		return None{}, nil
	case "secded-word":
		return NewWordSECDED()
	case "secded-line":
		return NewLineSECDED()
	}
	var t int
	extended := false
	if n, err := fmt.Sscanf(name, "ecc%dx", &t); err == nil && n == 1 && fmt.Sprintf("ecc%dx", t) == name {
		extended = true
	} else if n, err := fmt.Sscanf(name, "ecc%d", &t); err != nil || n != 1 || fmt.Sprintf("ecc%d", t) != name {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
	}
	return NewBCH(t, extended)
}

// Names lists the registry names accepted by ByName.
func Names() []string {
	names := []string{"none", "secded-word", "secded-line"}
	for t := 1; t <= 6; t++ {
		names = append(names, fmt.Sprintf("ecc%d", t), fmt.Sprintf("ecc%dx", t))
	}
	return names
}
