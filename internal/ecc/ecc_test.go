package ecc

import (
	"math/rand"
	"testing"

	"repro/internal/line"
)

func randLine(rng *rand.Rand) line.Line {
	var ln line.Line
	for w := range ln {
		ln[w] = rng.Uint64()
	}
	return ln
}

func TestByNameAll(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name && name != "ecc1x" && c.Name() != name[:len(name)-1] {
			// Extended BCH codecs report the base name.
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	for _, bad := range []string{"", "ecc", "ecc0", "ecc7", "ecc9", "eccx", "hamming", "ecc6xy"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q): want error", bad)
		}
	}
}

func TestStorageBudgets(t *testing.T) {
	// The storage claims of paper Section III-D.
	tests := []struct {
		name string
		want int
	}{
		{"none", 0},
		{"secded-word", 64},
		{"secded-line", 11},
		{"ecc6", 60},
		{"ecc6x", 61},
		{"ecc1", 10},
	}
	for _, tt := range tests {
		c, err := ByName(tt.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.StorageBits(); got != tt.want {
			t.Errorf("%s: StorageBits = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"none", "secded-word", "secded-line", "ecc1", "ecc2", "ecc6", "ecc6x"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			data := randLine(rng)
			chk := c.Encode(data)
			got, res := c.Decode(data, chk)
			if res.Uncorrectable || got != data || res.CorrectedBits != 0 {
				t.Errorf("%s: clean round trip failed (%+v)", name, res)
			}
		}
	}
}

func TestCodecsCorrectAtCapability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, name := range []string{"secded-line", "ecc1", "ecc3", "ecc6"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tcap := c.CorrectBits()
		for trial := 0; trial < 10; trial++ {
			data := randLine(rng)
			chk := c.Encode(data)
			bad := data
			seen := map[int]bool{}
			for len(seen) < tcap {
				p := rng.Intn(line.Bits)
				if !seen[p] {
					seen[p] = true
					bad = bad.FlipBit(p)
				}
			}
			got, res := c.Decode(bad, chk)
			if res.Uncorrectable || got != data {
				t.Errorf("%s: failed to correct %d errors", name, tcap)
			}
		}
	}
}

func TestWordSECDEDCorrectsOnePerWord(t *testing.T) {
	c, err := NewWordSECDED()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := randLine(rng)
	chk := c.Encode(data)
	// One error in every one of the eight words: all corrected.
	bad := data
	for w := 0; w < 8; w++ {
		bad = bad.FlipBit(w*64 + rng.Intn(64))
	}
	got, res := c.Decode(bad, chk)
	if res.Uncorrectable || got != data || res.CorrectedBits != 8 {
		t.Errorf("word secded 8x1 errors: res=%+v", res)
	}
	// Two errors in the same word: detected.
	bad2 := data.FlipBit(3).FlipBit(17)
	_, res = c.Decode(bad2, chk)
	if !res.Uncorrectable {
		t.Error("word secded same-word double error not detected")
	}
}

func TestMorphableModeResolution(t *testing.T) {
	m, err := NewDefaultMorphable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	data := randLine(rng)

	for _, mode := range []Mode{ModeWeak, ModeStrong} {
		spare := m.Encode(data, mode)
		got, ev := m.Decode(data, spare)
		if got != data || ev.Mode != mode || ev.ModeBitErrors != 0 || ev.TriedBoth {
			t.Errorf("mode %v: event %+v", mode, ev)
		}
	}
}

func TestMorphableModeBitSingleFlip(t *testing.T) {
	m, err := NewDefaultMorphable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := randLine(rng)
	for _, mode := range []Mode{ModeWeak, ModeStrong} {
		for b := 0; b < ModeBits; b++ {
			spare := m.Encode(data, mode) ^ (1 << b)
			got, ev := m.Decode(data, spare)
			if got != data || ev.Mode != mode {
				t.Errorf("mode %v flip bit %d: resolved %v", mode, b, ev.Mode)
			}
			if ev.ModeBitErrors != 1 || ev.TriedBoth {
				t.Errorf("mode %v flip bit %d: event %+v", mode, b, ev)
			}
		}
	}
}

func TestMorphableModeBitTieTryBoth(t *testing.T) {
	m, err := NewDefaultMorphable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		data := randLine(rng)
		// Strong-mode line with two mode replicas flipped to weak, plus
		// up to 6 data errors: the tie must resolve via trial decode to
		// strong and still correct everything.
		spare := m.Encode(data, ModeStrong) ^ 0b0011
		bad := data
		for e := 0; e < 1+rng.Intn(6); e++ {
			bad = bad.FlipBit(rng.Intn(line.Bits))
		}
		got, ev := m.Decode(bad, spare)
		if !ev.TriedBoth || ev.Mode != ModeStrong {
			t.Fatalf("tie not resolved by trial: %+v", ev)
		}
		if got != data {
			t.Fatal("tie resolution corrupted data")
		}
	}
}

func TestMorphableRejectsWideCodec(t *testing.T) {
	wide, err := NewWordSECDED() // 64 bits > 60 available
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := NewLineSECDED()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMorphable(narrow, wide); err == nil {
		t.Error("NewMorphable with 64-bit codec: want error")
	}
}

func TestDefaultCosts(t *testing.T) {
	secded, err := NewLineSECDED()
	if err != nil {
		t.Fatal(err)
	}
	if got := DefaultCost(secded).DecodeCycles; got != 2 {
		t.Errorf("SECDED decode cycles = %d, want 2", got)
	}
	ecc6, err := NewBCH(6, false)
	if err != nil {
		t.Fatal(err)
	}
	c6 := DefaultCost(ecc6)
	if c6.DecodeCycles != 30 {
		t.Errorf("ECC-6 decode cycles = %d, want 30", c6.DecodeCycles)
	}
	if c6.AreaGates < 100_000 || c6.AreaGates > 200_000 {
		t.Errorf("ECC-6 area = %d, want within paper's 100K-200K", c6.AreaGates)
	}
	if c6.DecodeEnergyPJ != 40 {
		t.Errorf("ECC-6 decode energy = %v pJ, want 40", c6.DecodeEnergyPJ)
	}
	if got := DefaultCost(None{}); got != (CostModel{}) {
		t.Errorf("none cost = %+v, want zero", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeWeak.String() != "weak" || ModeStrong.String() != "strong" {
		t.Error("Mode.String mismatch")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
}

// TestMorphableArbitraryLevels exercises the paper's closing remark: the
// scheme morphs between arbitrary ECC levels, not just SECDED/ECC-6.
func TestMorphableArbitraryLevels(t *testing.T) {
	weak, err := NewBCH(2, false) // 20 bits
	if err != nil {
		t.Fatal(err)
	}
	strong, err := NewBCH(5, true) // 51 bits
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMorphable(weak, strong)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		data := randLine(rng)
		// Weak mode corrects 2 errors.
		spare := m.Encode(data, ModeWeak)
		bad := data.FlipBit(rng.Intn(line.Bits)).FlipBit(256 + rng.Intn(128))
		got, ev := m.Decode(bad, spare)
		if got != data || ev.Mode != ModeWeak {
			t.Fatalf("weak ecc2 morph failed: %+v", ev)
		}
		// Strong mode corrects 5.
		spare = m.Encode(data, ModeStrong)
		bad = data
		for e := 0; e < 5; e++ {
			bad = bad.FlipBit(e*97 + trial)
		}
		got, ev = m.Decode(bad, spare)
		if got != data || ev.Mode != ModeStrong {
			t.Fatalf("strong ecc5x morph failed: %+v", ev)
		}
	}
}

func TestCodecCapabilityMetadata(t *testing.T) {
	// Correction/detection metadata for every registry codec: detection
	// is never below correction, storage fits the morphable budget for
	// everything but word SECDED.
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.DetectBits() < c.CorrectBits() {
			t.Errorf("%s: detect %d < correct %d", name, c.DetectBits(), c.CorrectBits())
		}
	}
	none := None{}
	if none.CorrectBits() != 0 || none.DetectBits() != 0 {
		t.Error("none capability")
	}
	w, err := NewWordSECDED()
	if err != nil {
		t.Fatal(err)
	}
	if w.CorrectBits() != 1 || w.DetectBits() != 2 {
		t.Error("word secded capability")
	}
	l, err := NewLineSECDED()
	if err != nil {
		t.Fatal(err)
	}
	if l.DetectBits() != 2 {
		t.Error("line secded detection")
	}
	m, err := NewDefaultMorphable()
	if err != nil {
		t.Fatal(err)
	}
	if m.Weak().Name() != "secded-line" || m.Strong().Name() != "ecc6" {
		t.Errorf("morphable codecs: weak=%s strong=%s", m.Weak().Name(), m.Strong().Name())
	}
}

// TestScreenersMatchDecode: for every codec that offers the fast screen,
// ScreenClean must be true exactly when Decode returns a zero Result —
// on clean, singly-, doubly- and multiply-corrupted lines, with junk in
// the check bits above the stored width.
func TestScreenersMatchDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, ok := c.(Screener)
		if !ok {
			t.Fatalf("%s: no Screener implementation", name)
		}
		for trial := 0; trial < 60; trial++ {
			data := randLine(rng)
			check := c.Encode(data)
			if w := c.StorageBits(); w < 64 {
				check |= rng.Uint64() << w
			}
			for _, flips := range []int{0, 1, 2, 5} {
				cd := data
				for f := 0; f < flips; f++ {
					cd = cd.FlipBit(rng.Intn(line.Bits))
				}
				out, res := c.Decode(cd, check)
				wantClean := res.CorrectedBits == 0 && !res.Uncorrectable && out == cd
				if got := s.ScreenClean(cd, check); got != wantClean {
					t.Fatalf("%s flips=%d: ScreenClean=%v, Decode %+v", name, flips, got, res)
				}
			}
		}
	}
}

// TestScreenWeakClean pins the morphable weak screen: true only for
// pristine weak-mode lines, false on mode-bit damage, data damage,
// check damage or strong mode.
func TestScreenWeakClean(t *testing.T) {
	m, err := NewDefaultMorphable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		data := randLine(rng)
		weakSpare := m.Encode(data, ModeWeak)
		if !m.ScreenWeakClean(data, weakSpare) {
			t.Fatal("pristine weak line failed screen")
		}
		if m.ScreenWeakClean(data, m.Encode(data, ModeStrong)) {
			t.Fatal("strong line passed weak screen")
		}
		if m.ScreenWeakClean(data, weakSpare^1) {
			t.Fatal("mode-bit flip passed screen")
		}
		if m.ScreenWeakClean(data.FlipBit(rng.Intn(line.Bits)), weakSpare) {
			t.Fatal("data flip passed screen")
		}
		if m.ScreenWeakClean(data, weakSpare^(1<<(ModeBits+rng.Intn(m.Weak().StorageBits())))) {
			t.Fatal("check flip passed screen")
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		data := line.Line{1, 2, 3}
		_ = m.ScreenWeakClean(data, m.Encode(data, ModeWeak))
	}); n != 0 {
		t.Fatalf("ScreenWeakClean+Encode allocate %v per run, want 0", n)
	}
}
