package ecc

import (
	"fmt"
	"math/bits"

	"repro/internal/batch"
	"repro/internal/line"
)

// Mode identifies which code currently protects a line (the ECC-mode bit
// of paper Section III-B).
type Mode int

// Modes. The stored encoding is a single logical bit replicated four ways
// (0000 = weak, 1111 = strong) for fault tolerance.
const (
	ModeWeak Mode = iota + 1
	ModeStrong
)

// String renders the mode for logs and reports.
func (m Mode) String() string {
	switch m {
	case ModeWeak:
		return "weak"
	case ModeStrong:
		return "strong"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Layout constants of Fig. 6: a (72,64)-provisioned memory gives 64 spare
// bits per 64-byte line; 4 carry the replicated ECC-mode flag and the
// remaining 60 hold whichever code protects the line.
const (
	// ModeBits is the number of replicas of the ECC-mode flag.
	ModeBits = 4
	// SpareBits is the total per-line ECC storage of a (72,64) memory.
	SpareBits = 64
	// CodeBits is the width available to the active code.
	CodeBits = SpareBits - ModeBits
)

// DecodeEvent describes how a morphable decode resolved, for accounting.
type DecodeEvent struct {
	// Mode is the mode the line was determined to be in.
	Mode Mode
	// ModeBitErrors is the number of flipped mode-bit replicas.
	ModeBitErrors int
	// TriedBoth is set when the replicas tied 2-2 and both decoders ran.
	TriedBoth bool
	// Result is the outcome of the winning decoder.
	Result Result
}

// Morphable packs a weak and a strong codec into the Fig. 6 line layout
// and resolves the stored mode on decode: majority vote over the four
// replicas, falling back to trying both decoders on a 2-2 tie (paper
// Section III-D). It is immutable and safe for concurrent use.
type Morphable struct {
	weak   Codec
	strong Codec
	// weakScreen is the weak codec's fast screen when it offers one
	// (resolved once at construction so the sweep hot loop avoids the
	// per-line type assertion), nil otherwise.
	weakScreen Screener
}

// NewMorphable builds the morphable layout over the given codecs. Both
// must fit in the 60 code bits.
func NewMorphable(weak, strong Codec) (*Morphable, error) {
	for _, c := range []Codec{weak, strong} {
		if c.StorageBits() > CodeBits {
			return nil, fmt.Errorf("%w: %s needs %d bits > %d",
				ErrTooWide, c.Name(), c.StorageBits(), CodeBits)
		}
	}
	m := &Morphable{weak: weak, strong: strong}
	m.weakScreen, _ = weak.(Screener)
	return m, nil
}

// NewDefaultMorphable builds the paper's configuration: line-granularity
// SECDED as the weak code and ECC-6 as the strong code.
func NewDefaultMorphable() (*Morphable, error) {
	weak, err := NewLineSECDED()
	if err != nil {
		return nil, err
	}
	strong, err := NewBCH(6, false)
	if err != nil {
		return nil, err
	}
	return NewMorphable(weak, strong)
}

// Weak returns the weak codec.
func (m *Morphable) Weak() Codec { return m.weak }

// Strong returns the strong codec.
func (m *Morphable) Strong() Codec { return m.strong }

// Encode produces the full 64-bit spare field for a line in the given
// mode: mode replicas in bits [0,4), code bits from bit 4 up.
func (m *Morphable) Encode(data line.Line, mode Mode) uint64 {
	c := m.weak
	var modeField uint64
	if mode == ModeStrong {
		c = m.strong
		modeField = (1 << ModeBits) - 1
	}
	return modeField | c.Encode(data)<<ModeBits
}

// minMorphablePerWorker is the batch size below which the morphable
// batch paths stay on the calling goroutine (a strong decode is a few
// microseconds, so 32 lines amortize the fork-join well).
const minMorphablePerWorker = 32

// EncodeBatch produces the spare field for each line in the given mode,
// fanning the work out over up to GOMAXPROCS workers: out[i] =
// Encode(data[i], mode). When the selected codec implements BatchCodec
// its bulk encoder is used directly. It panics if the slice lengths
// differ.
//
//meccvet:hotpath
func (m *Morphable) EncodeBatch(data []line.Line, mode Mode, out []uint64) {
	if len(data) != len(out) {
		// invariant: callers pass parallel slices (documented contract).
		panic("ecc: EncodeBatch slice lengths differ")
	}
	c := m.weak
	var modeField uint64
	if mode == ModeStrong {
		c = m.strong
		modeField = (1 << ModeBits) - 1
	}
	if bc, ok := c.(BatchCodec); ok {
		bc.EncodeBatch(data, out)
		for i := range out {
			out[i] = modeField | out[i]<<ModeBits
		}
		return
	}
	//meccvet:allow hotpath,hotclosure -- one closure per batch call, amortized over the lines
	batch.For(len(data), minMorphablePerWorker, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = modeField | c.Encode(data[i])<<ModeBits
		}
	})
}

// DecodeBatch resolves and decodes each stored (data[i], spare[i]) line
// into out[i] and evs[i], fanning the work out over up to GOMAXPROCS
// workers. Per-line results are identical to Decode; out may alias data.
// It panics if the slice lengths differ.
//
//meccvet:hotpath
func (m *Morphable) DecodeBatch(data []line.Line, spare []uint64, out []line.Line, evs []DecodeEvent) {
	if len(spare) != len(data) || len(out) != len(data) || len(evs) != len(data) {
		// invariant: callers pass parallel slices (documented contract).
		panic("ecc: DecodeBatch slice lengths differ")
	}
	//meccvet:allow hotpath,hotclosure -- one closure per batch call, amortized over the lines
	batch.For(len(data), minMorphablePerWorker, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], evs[i] = m.Decode(data[i], spare[i])
		}
	})
}

// ScreenWeakClean reports whether a stored line is a pristine weak-mode
// codeword: all four mode replicas zero and the weak code's screen
// clean — exactly the condition under which Decode resolves to
// {Mode: ModeWeak, ModeBitErrors: 0, Result: zero}. It returns false
// (conservatively forcing the full Decode) when the weak codec offers
// no Screener. The upgrade sweep runs this screen first and drops to
// the scalar decoder only for the rare lines that fail it.
//
//meccvet:hotpath
func (m *Morphable) ScreenWeakClean(data line.Line, spare uint64) bool {
	if m.weakScreen == nil || int(spare)&((1<<ModeBits)-1) != 0 {
		return false
	}
	return m.weakScreen.ScreenClean(data, spare>>ModeBits)
}

// Decode resolves the mode of a stored line and decodes it with the
// appropriate codec. The returned line is the corrected data; the event
// records how the mode was resolved.
func (m *Morphable) Decode(data line.Line, spare uint64) (line.Line, DecodeEvent) {
	replicas := int(spare) & ((1 << ModeBits) - 1)
	ones := bits.OnesCount(uint(replicas))
	check := spare >> ModeBits

	switch {
	case ones > ModeBits/2:
		fixed, res := m.strong.Decode(data, check)
		return fixed, DecodeEvent{
			Mode:          ModeStrong,
			ModeBitErrors: ModeBits - ones,
			Result:        res,
		}
	case ones < ModeBits/2:
		fixed, res := m.weak.Decode(data, check)
		return fixed, DecodeEvent{
			Mode:          ModeWeak,
			ModeBitErrors: ones,
			Result:        res,
		}
	default:
		// 2-2 tie: try the strong decoder first (ties can only arise
		// from retention errors, which only accumulate in strong mode),
		// then the weak one.
		if fixed, res := m.strong.Decode(data, check); !res.Uncorrectable {
			return fixed, DecodeEvent{
				Mode:          ModeStrong,
				ModeBitErrors: 2,
				TriedBoth:     true,
				Result:        res,
			}
		}
		fixed, res := m.weak.Decode(data, check)
		return fixed, DecodeEvent{
			Mode:          ModeWeak,
			ModeBitErrors: 2,
			TriedBoth:     true,
			Result:        res,
		}
	}
}
