package batch

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// span is one contiguous shard of work shipped to a pool worker.
type span struct {
	lo, hi int
}

// Pool is a set of persistent worker goroutines for repeated fork-join
// sweeps. Unlike For, which spawns one goroutine and one closure per
// chunk per call, a Pool starts its workers once at construction and
// ships [lo, hi) spans to them over per-worker channels, so a steady
// caller (the per-quantum upgrade sweep) runs with zero allocations —
// provided the work function itself is a persistent closure reused
// across calls rather than rebuilt per call.
//
// The work function receives the shard index alongside the span, so
// callers can keep per-worker scratch and accumulators and combine them
// deterministically after Run returns. Shard boundaries depend only on
// (n, minPerWorker, worker count), and shard w always runs spans for
// chunk w, so a caller that sums per-shard results in index order gets
// bit-identical totals on every run.
//
// Run serializes callers internally; a Pool is safe for concurrent use
// but executes one sweep at a time.
type Pool struct {
	mu      sync.Mutex
	wg      sync.WaitGroup
	workers int
	spans   []chan span
	// fn is the sweep body for the Run in progress. It is written before
	// the span sends and read by workers after the receive, so the
	// channel send/receive pair orders the accesses.
	fn func(worker, lo, hi int)
	// pobs is the per-worker telemetry set, swapped atomically as a unit
	// (same discipline as the package-level counters): nil reads as
	// detached and costs one branch per shard.
	pobs atomic.Pointer[poolCounters]
	// closed (under mu) makes Close idempotent: the span channels have
	// exactly one closing owner, and a second Close (a deferred one
	// after an explicit shutdown) must not double-close them.
	closed bool
}

// poolCounters is one consistent set of per-pool/per-worker metrics.
type poolCounters struct {
	rec    *obs.Recorder
	runs   *obs.Counter
	inline *obs.Counter
	// Per-worker shard/item/busy-time counters, indexed by worker. Busy
	// time is wall nanoseconds inside the shard body; comparing a
	// worker's share against the total exposes shard imbalance (the
	// pool's analogue of a steal/idle ratio).
	chunksW []*obs.Counter
	itemsW  []*obs.Counter
	busyW   []*obs.Counter
}

// SetObserver attaches per-pool and per-worker metrics to the pool
// (nil detaches). The per-worker series are labeled
// batch_pool_worker_*_total{worker="N"}. Safe to call while Run
// traffic is in flight.
func (p *Pool) SetObserver(r *obs.Recorder) {
	if r == nil {
		p.pobs.Store(nil)
		return
	}
	reg := r.Registry()
	reg.SetHelp("batch_pool_worker_busy_ns_total",
		"Wall nanoseconds each pool worker spent inside shard bodies.")
	pc := &poolCounters{
		rec:    r,
		runs:   r.Counter("batch_pool_runs_total"),
		inline: r.Counter("batch_pool_inline_runs_total"),
	}
	for w := 0; w < p.workers; w++ {
		lbl := strconv.Itoa(w)
		pc.chunksW = append(pc.chunksW, r.Counter(obs.SeriesName("batch_pool_worker_chunks_total", "worker", lbl)))
		pc.itemsW = append(pc.itemsW, r.Counter(obs.SeriesName("batch_pool_worker_items_total", "worker", lbl)))
		pc.busyW = append(pc.busyW, r.Counter(obs.SeriesName("batch_pool_worker_busy_ns_total", "worker", lbl)))
	}
	r.Gauge("batch_pool_workers").Set(float64(p.workers))
	p.pobs.Store(pc)
}

// NewPool starts a pool of the given number of worker goroutines.
// workers < 1 is clamped to 1. The workers live until Close.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		spans:   make([]chan span, workers),
	}
	for w := range p.spans {
		ch := make(chan span, 1)
		p.spans[w] = ch
		go func(w int) {
			for sp := range ch {
				// The clock reads bracket the shard only when telemetry is
				// attached, so untelemetered sweeps never touch wall time.
				if pc := p.pobs.Load(); pc != nil {
					start := time.Now()
					p.fn(w, sp.lo, sp.hi)
					pc.busyW[w].Add(uint64(time.Since(start)))
					pc.chunksW[w].Inc()
					pc.itemsW[w].Add(uint64(sp.hi - sp.lo))
				} else {
					p.fn(w, sp.lo, sp.hi)
				}
				p.wg.Done()
			}
		}(w)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the worker goroutines. The pool must be idle; Run must
// not be called afterwards. Close is idempotent — a repeated call is a
// no-op, not a double-close panic.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.spans {
		close(ch)
	}
}

// Run executes fn over [0, n) split into contiguous shards, one per
// worker, and returns once all shards complete. The shard count is
// capped by the pool size and by n/minPerWorker (rounded up); a single
// shard runs inline on the calling goroutine. fn receives the shard
// index (0-based, dense) and its [lo, hi) range; disjoint ranges mean
// fn may write per-index outputs without synchronization.
//
//meccvet:hotpath
func (p *Pool) Run(n, minPerWorker int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	c := loadCounters()
	c.calls.Inc()
	c.items.Add(uint64(n))
	pc := p.pobs.Load()
	if pc != nil {
		pc.runs.Inc()
	}
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	shards := p.workers
	if limit := (n + minPerWorker - 1) / minPerWorker; shards > limit {
		shards = limit
	}
	if shards <= 1 {
		c.inline.Inc()
		if pc != nil {
			pc.inline.Inc()
			pc.itemsW[0].Add(uint64(n))
		}
		//meccvet:allow hotclosure -- caller-supplied shard body; each caller proves its own body at a hotpath root
		fn(0, 0, n)
		return
	}
	var sweepSpan *obs.Span
	if pc != nil && pc.rec.Tracing() {
		//meccvet:allow hotclosure -- span bookkeeping runs only on traced sweeps; untraced runs take the nil path
		sweepSpan = pc.rec.StartSpan("batch_run", uint64(time.Now().UnixNano()))
	}
	p.mu.Lock()
	p.fn = fn
	chunk := (n + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		c.chunks.Inc()
		p.wg.Add(1)
		p.spans[w] <- span{lo: lo, hi: hi}
	}
	p.wg.Wait()
	p.fn = nil
	p.mu.Unlock()
	if sweepSpan != nil {
		//meccvet:allow hotclosure -- traced sweeps only; see above
		sweepSpan.End(uint64(time.Now().UnixNano()))
	}
}

// defaultPool is the shared process-wide pool, sized to GOMAXPROCS at
// first use.
var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the shared process-wide pool, creating it (with
// GOMAXPROCS workers) on first use. Callers share its serialization:
// concurrent Run calls queue behind one another.
func Default() *Pool {
	defaultPoolOnce.Do(func() {
		defaultPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return defaultPool
}
