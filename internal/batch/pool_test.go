package batch

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolCoversRange: every index in [0, n) is visited exactly once,
// across pool sizes and batch shapes, including the inline path.
func TestPoolCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 5, 64, 1000, 4096} {
			for _, minPer := range []int{1, 32, 5000} {
				visits := make([]int32, n)
				p.Run(n, minPer, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("workers=%d n=%d minPer=%d: index %d visited %d times", workers, n, minPer, i, v)
					}
				}
			}
		}
		p.Close()
	}
}

// TestPoolCloseIdempotent: a second Close (the deferred-plus-explicit
// shutdown shape) must be a no-op, not a double-close panic on the
// span channels.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3)
	var count atomic.Int32
	p.Run(100, 1, func(_, lo, hi int) { count.Add(int32(hi - lo)) })
	if got := count.Load(); got != 100 {
		t.Fatalf("visited %d items, want 100", got)
	}
	p.Close()
	p.Close()
}

// TestPoolShardIndexStable: shard w always receives the same [lo, hi)
// for fixed (n, minPerWorker), the property per-worker accumulators rely
// on for bit-identical reduction order.
func TestPoolShardIndexStable(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 1003
	var mu sync.Mutex
	first := map[int][2]int{}
	for trial := 0; trial < 20; trial++ {
		got := map[int][2]int{}
		p.Run(n, 1, func(w, lo, hi int) {
			mu.Lock()
			got[w] = [2]int{lo, hi}
			mu.Unlock()
		})
		if trial == 0 {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("trial %d: %d shards, want %d", trial, len(got), len(first))
		}
		for w, sp := range got {
			if sp != first[w] {
				t.Fatalf("trial %d: shard %d got %v, want %v", trial, w, sp, first[w])
			}
		}
	}
}

// TestPoolRunZeroAllocs: a steady-state Run with a persistent closure
// performs no heap allocations — the contract the upgrade sweep's
// zero-alloc budget is built on.
func TestPoolRunZeroAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	sink := make([]int, 4096)
	fn := func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i]++
		}
	}
	p.Run(len(sink), 1, fn) // warm up
	if n := testing.AllocsPerRun(100, func() {
		p.Run(len(sink), 1, fn)
	}); n != 0 {
		t.Fatalf("Pool.Run allocates %v per call, want 0", n)
	}
}

// TestPoolConcurrentRuns: concurrent callers serialize rather than
// interleave; run under -race in CI.
func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				p.Run(256, 1, func(_, lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}
		}()
	}
	wg.Wait()
	if got, want := total.Load(), int64(8*50*256); got != want {
		t.Fatalf("processed %d items, want %d", got, want)
	}
}

// TestDefaultPoolSingleton: Default returns one shared pool.
func TestDefaultPoolSingleton(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default() returned distinct pools")
	}
	if a.Workers() < 1 {
		t.Fatalf("default pool has %d workers", a.Workers())
	}
	done := false
	a.Run(1, 1, func(_, lo, hi int) { done = lo == 0 && hi == 1 })
	if !done {
		t.Fatal("default pool did not run the span")
	}
}
