package batch

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// TestSetObserverConcurrentWithFor is the race-detector regression test
// for the counter-set publication: SetObserver swaps recorders (and
// detaches) while For traffic and telemetry emission run full tilt on
// other goroutines. Before the atomic counter-set fix, the four
// package-level counter pointers were plain words and `go test -race`
// flagged this exact interleaving.
func TestSetObserverConcurrentWithFor(t *testing.T) {
	defer SetObserver(nil)
	recA, recB := obs.New(), obs.New()

	var stop atomic.Bool
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; !stop.Load(); i++ {
			switch i % 3 {
			case 0:
				SetObserver(recA)
			case 1:
				SetObserver(recB)
			default:
				SetObserver(nil)
			}
		}
	}()

	// Traffic: For calls large enough to spawn workers, with per-index
	// writes and telemetry emission from the work function.
	const items = 256
	outs := make([][]int, 4)
	var traffic sync.WaitGroup
	for g := range outs {
		outs[g] = make([]int, items)
		out := outs[g]
		traffic.Add(1)
		go func() {
			defer traffic.Done()
			for r := 0; r < 50; r++ {
				For(items, 1, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i] = i
					}
					recA.Emit(obs.Event{Kind: obs.KindDecode, T: uint64(lo)})
				})
			}
		}()
	}
	traffic.Wait()
	stop.Store(true)
	swapper.Wait()

	for g, out := range outs {
		for i, v := range out {
			if v != i {
				t.Fatalf("outs[%d][%d] = %d, want %d", g, i, v, i)
			}
		}
	}
}
