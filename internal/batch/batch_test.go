package batch

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 4097} {
		hits := make([]int32, n)
		For(n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForSmallBatchRunsInline(t *testing.T) {
	// With n below minPerWorker the work must run on the calling
	// goroutine (one chunk, full range).
	calls := 0
	For(5, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 5 {
			t.Fatalf("inline chunk = [%d,%d), want [0,5)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestForWorkerCap(t *testing.T) {
	var calls int32
	For(1000, 1, func(lo, hi int) { atomic.AddInt32(&calls, 1) })
	if got, max := int(calls), runtime.GOMAXPROCS(0); got > max {
		t.Fatalf("chunks = %d > GOMAXPROCS = %d", got, max)
	}
}

func TestForNegativeMinPerWorker(t *testing.T) {
	covered := make([]int32, 10)
	For(10, -3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, h := range covered {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}
