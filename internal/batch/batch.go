// Package batch provides the shared fork-join primitive behind the
// batched encode/decode sweep APIs (internal/bch, internal/ecc): split n
// independent items into contiguous chunks and run the chunks on a pool
// of up to GOMAXPROCS goroutines. Work functions receive disjoint [lo,hi)
// ranges, so they may write to per-index output slices without
// synchronization.
package batch

import (
	"runtime"
	"sync"
)

// For runs fn over [0, n) split into contiguous [lo, hi) chunks, one per
// worker goroutine. The worker count is capped by GOMAXPROCS and by
// n/minPerWorker (rounded up), so small batches run inline on the calling
// goroutine with zero scheduling overhead. For returns once every chunk
// has completed. minPerWorker < 1 is treated as 1.
func For(n, minPerWorker int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if limit := (n + minPerWorker - 1) / minPerWorker; workers > limit {
		workers = limit
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
