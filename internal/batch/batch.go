// Package batch provides the shared fork-join primitive behind the
// batched encode/decode sweep APIs (internal/bch, internal/ecc): split n
// independent items into contiguous chunks and run the chunks on a pool
// of up to GOMAXPROCS goroutines. Work functions receive disjoint [lo,hi)
// ranges, so they may write to per-index output slices without
// synchronization.
package batch

import (
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Package-level telemetry counters (nil no-ops by default; see
// internal/obs). Atomic, so concurrent For calls may share them.
var (
	obsCalls  *obs.Counter
	obsInline *obs.Counter
	obsChunks *obs.Counter
	obsItems  *obs.Counter
)

// SetObserver wires the fork-join counters to a recorder (nil
// detaches): total For calls, calls that ran inline, worker chunks
// spawned, and items processed. Call at harness setup, not concurrently
// with For traffic.
func SetObserver(r *obs.Recorder) {
	obsCalls = r.Counter("batch_calls_total")
	obsInline = r.Counter("batch_inline_calls_total")
	obsChunks = r.Counter("batch_chunks_total")
	obsItems = r.Counter("batch_items_total")
}

// For runs fn over [0, n) split into contiguous [lo, hi) chunks, one per
// worker goroutine. The worker count is capped by GOMAXPROCS and by
// n/minPerWorker (rounded up), so small batches run inline on the calling
// goroutine with zero scheduling overhead. For returns once every chunk
// has completed. minPerWorker < 1 is treated as 1.
func For(n, minPerWorker int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	obsCalls.Inc()
	obsItems.Add(uint64(n))
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if limit := (n + minPerWorker - 1) / minPerWorker; workers > limit {
		workers = limit
	}
	if workers <= 1 {
		obsInline.Inc()
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		obsChunks.Inc()
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
