// Package batch provides the shared fork-join primitive behind the
// batched encode/decode sweep APIs (internal/bch, internal/ecc): split n
// independent items into contiguous chunks and run the chunks on a pool
// of up to GOMAXPROCS goroutines. Work functions receive disjoint [lo,hi)
// ranges, so they may write to per-index output slices without
// synchronization.
package batch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// counters is one consistent set of fork-join telemetry counters:
// total For calls, calls that ran inline, worker chunks spawned, and
// items processed. The whole set is swapped atomically so a For call
// racing a SetObserver sees either the old recorder's counters or the
// new one's, never a mix — and never a torn pointer.
type counters struct {
	calls  *obs.Counter
	inline *obs.Counter
	chunks *obs.Counter
	items  *obs.Counter
}

// obsState holds the current counter set. A nil pointer (the default)
// reads as detached; the nil *obs.Counter methods inside zeroCounters
// are no-ops behind one branch, so the detached path stays free.
var obsState atomic.Pointer[counters]

// zeroCounters is the detached set: all-nil counters, all no-ops.
var zeroCounters counters

// loadCounters returns the current counter set, detached when no
// observer has been wired.
func loadCounters() *counters {
	if c := obsState.Load(); c != nil {
		return c
	}
	return &zeroCounters
}

// SetObserver wires the fork-join counters to a recorder (nil
// detaches), and the default pool's per-worker metrics along with them.
// Safe to call concurrently with For traffic: the counter set is
// published atomically as a unit.
func SetObserver(r *obs.Recorder) {
	Default().SetObserver(r)
	if r == nil {
		obsState.Store(nil)
		return
	}
	obsState.Store(&counters{
		calls:  r.Counter("batch_calls_total"),
		inline: r.Counter("batch_inline_calls_total"),
		chunks: r.Counter("batch_chunks_total"),
		items:  r.Counter("batch_items_total"),
	})
}

// For runs fn over [0, n) split into contiguous [lo, hi) chunks, one per
// worker goroutine. The worker count is capped by GOMAXPROCS and by
// n/minPerWorker (rounded up), so small batches run inline on the calling
// goroutine with zero scheduling overhead. For returns once every chunk
// has completed. minPerWorker < 1 is treated as 1.
func For(n, minPerWorker int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	c := loadCounters()
	c.calls.Inc()
	c.items.Add(uint64(n))
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if limit := (n + minPerWorker - 1) / minPerWorker; workers > limit {
		workers = limit
	}
	if workers <= 1 {
		c.inline.Inc()
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		c.chunks.Inc()
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
