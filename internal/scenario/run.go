package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/checker"
	"repro/internal/obs"
	"repro/internal/reliability"
	"repro/internal/retention"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options adjusts how the interpreter executes a spec. The zero value is
// the standard configuration: event-wheel stepping, invariant checkers
// attached, no telemetry.
type Options struct {
	// NoCheck skips attaching the run-time checker suite. Scenarios that
	// declare checker invariants fail under it, by design.
	NoCheck bool
	// LegacyStepping forces the per-cycle reference scheduler.
	LegacyStepping bool
	// Obs, when non-nil, receives metrics/events/spans from the run.
	Obs *obs.Recorder
	// SpanParent parents the scenario's root span (requires Obs).
	SpanParent uint64
	// ExtraFaults appends a fault schedule on top of the spec's own —
	// the planted-regression hook: a clean scenario plus an injected
	// storm must fail its invariants.
	ExtraFaults []checker.Fault
	// Tamper, when non-nil, mutates the simulator config after the spec
	// is applied and before the runner is built — the second
	// planted-regression hook (e.g. forcing an unsafe refresh divider).
	Tamper func(*sim.Config)
}

// PhaseRecord summarizes one executed (repeat-expanded) phase.
type PhaseRecord struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Type  string `json:"type"`
	// TempC is the junction temperature during the phase.
	TempC float64 `json:"temp_c"`
	// CumEnergyJ and CumInstructions are cumulative totals at phase end.
	CumEnergyJ      float64 `json:"cum_energy_j"`
	CumInstructions uint64  `json:"cum_instructions"`
	// Idle-entry transition summary (idle-bearing phases only).
	SweepCycles   uint64 `json:"sweep_cycles,omitempty"`
	LinesUpgraded uint64 `json:"lines_upgraded,omitempty"`
	DividerBits   int    `json:"divider_bits,omitempty"`
}

// InvariantRecord is one evaluated invariant.
type InvariantRecord struct {
	Kind   string `json:"kind"`
	Desc   string `json:"desc"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Outcome is the full result of interpreting one scenario.
type Outcome struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Short  bool   `json:"short"`
	Scheme string `json:"scheme"`
	Seed   int64  `json:"seed"`
	// UncorrectableProb is the combined uncorrectable-error probability
	// over all idle periods under the retention model.
	UncorrectableProb float64           `json:"uncorrectable_prob"`
	Phases            []PhaseRecord     `json:"phases"`
	Invariants        []InvariantRecord `json:"invariants"`
	// Violations renders every checker violation (context-labeled).
	Violations []string `json:"violations,omitempty"`
	// Result is the end-of-run figures of merit.
	Result sim.Result `json:"result"`
}

// switchSource is a trace.Source whose inner generator the interpreter
// swaps at phase boundaries, so one runner plays a different workload
// per phase.
type switchSource struct {
	src trace.Source
}

// Next implements trace.Source.
func (s *switchSource) Next() (trace.Record, bool) {
	if s.src == nil {
		return trace.Record{}, false
	}
	return s.src.Next()
}

// idleEpisode captures one idle period for the retention evaluation.
type idleEpisode struct {
	dur     time.Duration
	tempC   float64
	divider int
}

// runState is everything executePhases produces beyond the sim result.
type runState struct {
	result     sim.Result
	phases     []PhaseRecord
	energy     []float64 // cumulative total energy per phase boundary
	episodes   []idleEpisode
	idleTime   time.Duration
	violations []checker.Violation
}

// buildConfig maps the spec (plus options) onto a simulator config.
func buildConfig(s Spec, kind sim.SchemeKind, opts Options) sim.Config {
	cfg := sim.DefaultConfig(kind, 0)
	cfg.Seed = s.seed()
	if s.TempC != 0 {
		cfg.TempC = s.TempC
	}
	cfg.Ctrl.LegacyStepping = opts.LegacyStepping
	if s.DividerBits != nil {
		cfg.MECC.DividerBits = *s.DividerBits
	}
	cfg.MECC.MDTEnabled = !s.NoMDT
	cfg.MECC.SMDEnabled = s.SMD
	if s.SMDThresholdMPKC > 0 {
		cfg.MECC.SMDThresholdMPKC = s.SMDThresholdMPKC
	}
	// Shrink the SMD monitoring quantum with the footprint scale, as
	// cmd/meccsim does, so scaled bursts still span several windows.
	cfg.MECC.SMDWindowCycles /= uint64(s.scale())
	if cfg.MECC.SMDWindowCycles == 0 {
		cfg.MECC.SMDWindowCycles = 1
	}
	return cfg
}

// faultPlan builds the deterministic refresh-fault schedule from the
// spec plus any planted extras.
func faultPlan(s Spec, opts Options) *checker.FaultPlan {
	var faults []checker.Fault
	if f := s.Faults; f != nil {
		kind := checker.DropRefresh
		if f.Kind == "delay_refresh" {
			kind = checker.DelayRefresh
		}
		for i := 0; i < f.Count; i++ {
			faults = append(faults, checker.Fault{
				Kind:        kind,
				Seq:         f.StartSeq + uint64(i),
				DelayCycles: f.DelayCycles,
			})
		}
	}
	faults = append(faults, opts.ExtraFaults...)
	if len(faults) == 0 {
		return nil
	}
	return &checker.FaultPlan{Seed: s.seed(), Faults: faults}
}

// firstProfile picks the runner's nominal profile: the first
// workload-bearing phase, else gcc (pure idle patterns).
func firstProfile(s Spec) (workload.Profile, error) {
	for _, p := range s.Phases {
		if p.Workload != "" {
			return resolveProfile(p.Workload)
		}
	}
	return workload.ByName("gcc")
}

// executePhases drives one runner through the spec's phase list and
// returns the collected state. suite may be nil (unchecked twin runs).
func executePhases(s Spec, cfg sim.Config, suite *checker.Suite, plan *checker.FaultPlan, rec *obs.Recorder, spanParent uint64) (*runState, error) {
	cfg.Check = suite
	cfg.Obs = rec
	scnSpan := rec.StartSpanUnder("scenario:"+s.Name, spanParent, 0)
	if scnSpan != nil {
		cfg.SpanParent = scnSpan.ID()
	}
	prof0, err := firstProfile(s)
	if err != nil {
		return nil, err
	}
	scale := s.scale()
	src := &switchSource{}
	r, err := sim.NewRunnerWithSource(prof0.Scaled(scale), src, cfg)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		r.InjectRefreshFaults(plan.RefreshFaults())
	}
	totalLines := cfg.DRAM.TotalLines()
	st := &runState{}
	idle := false
	expanded := 0

	setWorkload := func(p Phase, seq int) error {
		prof, err := resolveProfile(p.Workload)
		if err != nil {
			return err
		}
		sp := prof.Scaled(scale)
		gen, err := workload.NewGenerator(sp, totalLines, s.seed()*1_000_003+int64(seq))
		if err != nil {
			return err
		}
		src.src = gen
		cpi := sp.BaseCPI
		if p.DVFSMult > 0 {
			cpi *= p.DVFSMult
		}
		return r.SetBaseCPI(cpi)
	}
	goIdle := func(p Phase, recPhase *PhaseRecord) error {
		if err := r.GoIdle(p.Duration()); err != nil {
			return err
		}
		tr := r.LastTransition()
		st.episodes = append(st.episodes, idleEpisode{
			dur: p.Duration(), tempC: r.TempC(), divider: tr.DividerBits,
		})
		recPhase.SweepCycles = tr.SweepCycles
		recPhase.LinesUpgraded = tr.LinesUpgraded
		recPhase.DividerBits = tr.DividerBits
		return nil
	}

	for pi, p := range s.Phases {
		repeat := p.Repeat
		if repeat <= 0 {
			repeat = 1
		}
		label := p.Label(pi)
		for rep := 0; rep < repeat; rep++ {
			seq := expanded
			expanded++
			suite.SetContext(s.Name + "/" + label)
			if p.TempC != 0 {
				if err := r.SetTempC(p.TempC); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
			}
			pr := PhaseRecord{Index: seq, Name: label, Type: p.Type, TempC: r.TempC()}
			switch p.Type {
			case PhaseActive:
				if idle {
					if err := r.WakeUp(); err != nil {
						return nil, fmt.Errorf("phase %s: %w", label, err)
					}
					idle = false
				}
				if err := setWorkload(p, seq); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
				if err := r.RunActive(p.Instructions); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
			case PhaseIdle:
				if err := goIdle(p, &pr); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
				idle = true
			case PhaseDaemon:
				if err := r.WakeUp(); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
				if err := setWorkload(p, seq); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
				if err := r.RunActive(p.Instructions); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
				if err := goIdle(p, &pr); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
			case PhaseSuspendResume:
				if err := goIdle(p, &pr); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
				if err := r.WakeUp(); err != nil {
					return nil, fmt.Errorf("phase %s: %w", label, err)
				}
			}
			snap := r.Result()
			pr.CumEnergyJ = snap.TotalEnergyJ()
			pr.CumInstructions = snap.Instructions
			st.energy = append(st.energy, pr.CumEnergyJ)
			st.phases = append(st.phases, pr)
		}
	}
	suite.SetContext(s.Name + "/end")
	if idle {
		if err := r.WakeUp(); err != nil {
			return nil, err
		}
	}
	st.result = r.Result()
	st.idleTime = r.IdleTime()
	st.violations = suite.Violations()
	scnSpan.End(st.result.Cycles)
	return st, nil
}

// eccStrength maps a scheme to the correctable bit count during idle
// (after the upgrade sweep every MECC line holds the strong code).
func eccStrength(kind sim.SchemeKind) int {
	switch kind {
	case sim.SchemeMECC, sim.SchemeECC6:
		return 6
	case sim.SchemeSECDED:
		return 1
	default:
		return 0
	}
}

// uncorrectableProb evaluates the retention model over every idle
// episode and combines the per-episode system failure probabilities.
// The exposure period of one episode is the refresh period at its
// divider, capped by the episode duration but never below the 64 ms
// base period a line is exposed to regardless.
func uncorrectableProb(episodes []idleEpisode, kind sim.SchemeKind) float64 {
	model := retention.DefaultModel()
	t := eccStrength(kind)
	logOK := 0.0 // log of probability that no episode fails
	for _, ep := range episodes {
		period := retention.JEDECPeriod << ep.divider
		exposure := ep.dur
		if exposure < retention.JEDECPeriod {
			exposure = retention.JEDECPeriod
		}
		if exposure > period {
			exposure = period
		}
		ber := model.BERAtTemp(exposure, ep.tempC)
		var sf float64
		switch {
		case ber <= 0:
			sf = 0
		case ber >= 1:
			sf = 1
		default:
			lf, err := reliability.LineFailure(576, t, ber)
			if err != nil {
				sf = 1
			} else if sf, err = reliability.SystemFailure(lf, reliability.DefaultMemoryLines); err != nil {
				sf = 1
			}
		}
		if sf >= 1 {
			return 1
		}
		logOK += math.Log1p(-sf)
	}
	p := -math.Expm1(logOK)
	if p <= 0 {
		return 0 // normalize -0 from an empty or all-safe episode list
	}
	return p
}

// totalRefreshPulses sums auto-refresh commands and self-refresh pulses.
func totalRefreshPulses(res sim.Result) float64 {
	return float64(res.DRAM.NREF + res.DRAM.NREFpb + res.DRAM.NSelfRefreshPulses)
}

// Run interprets one validated spec and evaluates its invariants.
func Run(s Spec, opts Options) (*Outcome, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	kind, err := s.scheme()
	if err != nil {
		return nil, err
	}
	cfg := buildConfig(s, kind, opts)
	if opts.Tamper != nil {
		opts.Tamper(&cfg)
	}
	var suite *checker.Suite
	if !opts.NoCheck {
		suite = checker.NewSuite()
	}
	st, err := executePhases(s, cfg, suite, faultPlan(s, opts), opts.Obs, opts.SpanParent)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}

	out := &Outcome{
		Name:              s.Name,
		Short:             s.Short,
		Scheme:            kind.String(),
		Seed:              s.seed(),
		UncorrectableProb: uncorrectableProb(st.episodes, kind),
		Phases:            st.phases,
		Result:            st.result,
	}
	for _, v := range st.violations {
		out.Violations = append(out.Violations, v.String())
	}

	// Derived metrics ride on top of the flattened result.
	flat := Flatten(st.result)
	flat[MetricTotalEnergyJ] = st.result.TotalEnergyJ()
	flat[MetricTotalRefreshPulses] = totalRefreshPulses(st.result)
	flat[MetricIdleTimeSec] = st.idleTime.Seconds()
	flat[MetricUncorrectableProb] = out.UncorrectableProb

	// The baseline twin (no protection, no faults, no checker) is run at
	// most once, only when a comparative invariant asks for it.
	var base *runState
	baseline := func() (*runState, error) {
		if base != nil {
			return base, nil
		}
		bs := s
		bs.Scheme = "baseline"
		bs.Faults = nil
		bcfg := buildConfig(bs, sim.SchemeBaseline, opts)
		b, err := executePhases(bs, bcfg, nil, nil, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: baseline twin: %w", s.Name, err)
		}
		base = b
		return base, nil
	}

	expected := map[string]bool{}
	for _, inv := range s.Invariants {
		if inv.Kind == InvExpectViolation {
			expected[inv.Invariant] = true
		}
	}
	declaredClean := false

	for _, inv := range s.Invariants {
		rec := InvariantRecord{Kind: inv.Kind, Desc: inv.describe(), OK: true}
		switch inv.Kind {
		case InvMetricMax, InvMetricMin:
			got, ok := flat[inv.Metric]
			switch {
			case !ok:
				rec.OK = false
				rec.Detail = fmt.Sprintf("metric %s unavailable in this run", inv.Metric)
			case inv.Kind == InvMetricMax && got > inv.Value:
				rec.OK = false
				rec.Detail = fmt.Sprintf("%s = %g, want <= %g", inv.Metric, got, inv.Value)
			case inv.Kind == InvMetricMin && got < inv.Value:
				rec.OK = false
				rec.Detail = fmt.Sprintf("%s = %g, want >= %g", inv.Metric, got, inv.Value)
			default:
				rec.Detail = fmt.Sprintf("%s = %g", inv.Metric, got)
			}
		case InvMaxSlowdown:
			b, err := baseline()
			if err != nil {
				return nil, err
			}
			slow := b.result.IPC / st.result.IPC
			rec.Detail = fmt.Sprintf("slowdown %.4f", slow)
			if slow > inv.Value {
				rec.OK = false
				rec.Detail = fmt.Sprintf("slowdown %.4f, want <= %g", slow, inv.Value)
			}
		case InvMinEnergySaving:
			b, err := baseline()
			if err != nil {
				return nil, err
			}
			saving := 1 - st.result.TotalEnergyJ()/b.result.TotalEnergyJ()
			rec.Detail = fmt.Sprintf("energy saving %.4f", saving)
			if saving < inv.Value {
				rec.OK = false
				rec.Detail = fmt.Sprintf("energy saving %.4f, want >= %g", saving, inv.Value)
			}
		case InvMinRefreshSaving:
			b, err := baseline()
			if err != nil {
				return nil, err
			}
			saving := 1 - totalRefreshPulses(st.result)/totalRefreshPulses(b.result)
			rec.Detail = fmt.Sprintf("refresh saving %.4f", saving)
			if saving < inv.Value {
				rec.OK = false
				rec.Detail = fmt.Sprintf("refresh saving %.4f, want >= %g", saving, inv.Value)
			}
		case InvEnergyMonotonic:
			for i := 1; i < len(st.energy); i++ {
				if st.energy[i] < st.energy[i-1] {
					rec.OK = false
					rec.Detail = fmt.Sprintf("energy shrank at phase %d: %g -> %g",
						i, st.energy[i-1], st.energy[i])
					break
				}
			}
		case InvCheckerClean:
			declaredClean = true
			if opts.NoCheck {
				rec.OK = false
				rec.Detail = "checker disabled (-no-check)"
			} else if n := len(st.violations); n > 0 {
				rec.OK = false
				rec.Detail = fmt.Sprintf("%d violation(s), first: %s", n, st.violations[0])
			}
		case InvExpectViolation:
			if opts.NoCheck {
				rec.OK = false
				rec.Detail = "checker disabled (-no-check)"
				break
			}
			fired := false
			for _, v := range st.violations {
				if v.Invariant == inv.Invariant {
					fired = true
					break
				}
			}
			if !fired {
				rec.OK = false
				rec.Detail = fmt.Sprintf("expected %s violation did not fire", inv.Invariant)
			}
		case InvZeroUncorrectable:
			budget := inv.Budget
			if budget == 0 {
				budget = reliability.TargetSystemFailure
			}
			rec.Detail = fmt.Sprintf("uncorrectable_prob %.3g, budget %g", out.UncorrectableProb, budget)
			if out.UncorrectableProb > budget {
				rec.OK = false
			}
		case InvSteppingEquivalence:
			twinOpts := opts
			twinOpts.LegacyStepping = !opts.LegacyStepping
			twinOpts.Obs = nil
			tcfg := buildConfig(s, kind, twinOpts)
			if opts.Tamper != nil {
				opts.Tamper(&tcfg)
				tcfg.Ctrl.LegacyStepping = twinOpts.LegacyStepping
			}
			twin, err := executePhases(s, tcfg, checker.NewSuite(), faultPlan(s, twinOpts), nil, 0)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: stepping twin: %w", s.Name, err)
			}
			a, err := json.Marshal(st.result)
			if err != nil {
				return nil, err
			}
			b, err := json.Marshal(twin.result)
			if err != nil {
				return nil, err
			}
			if string(a) != string(b) {
				rec.OK = false
				rec.Detail = "wheel and legacy stepping results differ"
			}
		}
		out.Invariants = append(out.Invariants, rec)
	}

	// Violations not covered by an expect_violation declaration fail the
	// scenario even when no checker invariant was declared (checker_clean
	// already reports them when present).
	if !declaredClean && !opts.NoCheck {
		for _, v := range st.violations {
			if !expected[v.Invariant] {
				out.Invariants = append(out.Invariants, InvariantRecord{
					Kind: "unexpected_violation",
					Desc: "no undeclared checker violations",
					OK:   false, Detail: v.String(),
				})
				break
			}
		}
	}

	out.Passed = true
	for _, rec := range out.Invariants {
		if !rec.OK {
			out.Passed = false
			break
		}
	}
	return out, nil
}

// RunSet interprets specs concurrently on the given number of workers
// (min 1) and returns outcomes in spec order — results are independent
// of the worker count by construction (each scenario runs on its own
// runner with its own seeds).
func RunSet(specs []Spec, opts Options, workers int) ([]*Outcome, error) {
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]*Outcome, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i], errs[i] = Run(specs[i], opts)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outcomes, nil
}

// WriteJSONL streams outcomes as one JSON object per line, followed by a
// summary line. The encoding is deterministic (struct field order), so
// equal runs produce byte-identical output.
func WriteJSONL(w io.Writer, outcomes []*Outcome) error {
	enc := json.NewEncoder(w)
	passed := 0
	for _, o := range outcomes {
		rec := struct {
			Rec string `json:"rec"`
			*Outcome
		}{Rec: "outcome", Outcome: o}
		if err := enc.Encode(rec); err != nil {
			return err
		}
		if o.Passed {
			passed++
		}
	}
	summary := struct {
		Rec    string `json:"rec"`
		Total  int    `json:"total"`
		Passed int    `json:"passed"`
		Failed int    `json:"failed"`
	}{"summary", len(outcomes), passed, len(outcomes) - passed}
	return enc.Encode(summary)
}
