package scenario

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/sim"
)

// The planted-bug tests: a scenario is only worth gating CI on if it
// demonstrably fails when the behavior it protects regresses. Each test
// seeds a regression through the Options hooks and asserts the scenario
// catches it.

// TestPlantedRefreshStormFailsCleanScenario plants a 60-drop refresh
// storm under the clean SMD-probe scenario (its 400k-instruction bursts
// span enough refresh intervals for the deficit to clear the tracker's
// postponement tolerance): the refresh-ratio invariant must fire and
// fail checker_clean.
func TestPlantedRefreshStormFailsCleanScenario(t *testing.T) {
	s := mustBuiltin(t, "smd-burst-probe")
	storm := make([]checker.Fault, 60)
	for i := range storm {
		storm[i] = checker.Fault{Kind: checker.DropRefresh, Seq: uint64(i)}
	}
	out, err := Run(s, Options{ExtraFaults: storm})
	if err != nil {
		t.Fatal(err)
	}
	if out.Passed {
		t.Fatal("scenario passed despite a planted refresh-drop storm")
	}
	found := false
	for _, inv := range out.Invariants {
		if inv.Kind == InvCheckerClean && !inv.OK {
			found = true
		}
	}
	if !found {
		t.Error("checker_clean did not fail under the planted storm")
	}
	if len(out.Violations) == 0 {
		t.Error("no violations recorded for the planted storm")
	}
}

// TestPlantedDividerRegressionFailsHotIdleProbe reverts the idle
// refresh divider to JEDEC rate (divider 0) under the hot-idle detector
// scenario: the uncorrectable probability collapses and the scenario's
// metric_min invariant — which exists to prove the unsafe regime is
// detectable — must fail.
func TestPlantedDividerRegressionFailsHotIdleProbe(t *testing.T) {
	s := mustBuiltin(t, "hot-idle-unsafe")
	out, err := Run(s, Options{Tamper: func(cfg *sim.Config) {
		cfg.MECC.DividerBits = 0
	}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Passed {
		t.Fatal("hot-idle probe passed despite the divider being reverted to 64 ms")
	}
	if out.UncorrectableProb > 1e-6 {
		t.Errorf("uncorrectable_prob = %g at JEDEC rate, expected it to collapse", out.UncorrectableProb)
	}
}

// TestFaultStormScenarioRequiresItsViolation runs the fault-storm
// scenario with its fault schedule stripped: expect_violation must then
// fail, proving the scenario asserts the violation fires rather than
// merely tolerating it.
func TestFaultStormScenarioRequiresItsViolation(t *testing.T) {
	s := mustBuiltin(t, "fault-storm")
	s.Faults = nil
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Passed {
		t.Fatal("fault-storm passed without its fault schedule; expect_violation is vacuous")
	}
}
