package scenario

import (
	"reflect"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Metric flattening: invariants reference simulator results by dotted
// JSON-tag paths ("dram.n_self_refresh_pulses", "ctrl.refreshes_dropped",
// "mecc.sweeps", "ipc"). The walk uses the struct tags via reflection
// rather than round-tripping through json.Marshal because omitempty
// drops zero-valued fields — the validation key set must contain every
// metric a run can produce, not just the nonzero ones.

// Derived metric names computed by the interpreter on top of the result
// struct.
const (
	// MetricTotalEnergyJ is DRAM plus codec energy.
	MetricTotalEnergyJ = "total_energy_j"
	// MetricTotalRefreshPulses sums REF, REFpb, and self-refresh pulses.
	MetricTotalRefreshPulses = "total_refresh_pulses"
	// MetricIdleTimeSec is accumulated idle wall-clock seconds.
	MetricIdleTimeSec = "idle_time_sec"
	// MetricUncorrectableProb is the combined probability of an
	// uncorrectable error across all idle periods under the retention
	// model at the scenario's temperatures.
	MetricUncorrectableProb = "uncorrectable_prob"
)

// flattenValue walks v (a struct) and records every numeric leaf under
// its dotted JSON-tag path.
func flattenValue(prefix string, v reflect.Value, out map[string]float64) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "-" {
			continue
		}
		if tag == "" {
			tag = f.Name
		}
		key := tag
		if prefix != "" {
			key = prefix + "." + tag
		}
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Struct:
			flattenValue(key, fv, out)
		case reflect.Pointer:
			if fv.Type().Elem().Kind() != reflect.Struct {
				continue
			}
			if fv.IsNil() {
				continue
			}
			flattenValue(key, fv.Elem(), out)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			out[key] = float64(fv.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			out[key] = float64(fv.Uint())
		case reflect.Float32, reflect.Float64:
			out[key] = fv.Float()
		}
		// Strings, bools, slices, arrays, and maps are not metrics.
	}
}

// Flatten maps a result to dotted metric names. MECC metrics appear only
// when the result carries MECC stats.
func Flatten(res sim.Result) map[string]float64 {
	out := map[string]float64{}
	flattenValue("", reflect.ValueOf(res), out)
	// "scheme" is an identity field, not a quantity.
	delete(out, "scheme")
	return out
}

// MetricKeys returns the full set of valid metric names for spec
// validation: every flattened result field (with MECC stats present)
// plus the derived metrics.
func MetricKeys() map[string]bool {
	res := sim.Result{MECC: &core.Stats{}}
	flat := Flatten(res)
	keys := make(map[string]bool, len(flat)+4)
	for k := range flat {
		keys[k] = true
	}
	for _, k := range []string{
		MetricTotalEnergyJ, MetricTotalRefreshPulses,
		MetricIdleTimeSec, MetricUncorrectableProb,
	} {
		keys[k] = true
	}
	return keys
}

// MetricNames returns the valid metric names sorted, for meccscn list
// -metrics.
func MetricNames() []string {
	keys := MetricKeys()
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
