package scenario

import (
	"strings"
	"testing"
)

// TestSeedScenarios is the black-box gate: every embedded seed scenario
// must pass end-to-end. Under -short only the scenarios marked short run
// (the PR-level CI subset); the full set runs on main.
func TestSeedScenarios(t *testing.T) {
	specs, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 8 {
		t.Fatalf("seed library has %d scenarios, want >= 8", len(specs))
	}
	for _, s := range specs {
		t.Run(s.Name, func(t *testing.T) {
			if testing.Short() && !s.Short {
				t.Skip("full-length scenario; run without -short")
			}
			out, err := Run(s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Passed {
				for _, inv := range out.Invariants {
					if !inv.OK {
						t.Errorf("invariant failed: %s — %s", inv.Desc, inv.Detail)
					}
				}
				for _, v := range out.Violations {
					t.Errorf("violation: %s", v)
				}
			}
		})
	}
}

// TestBuiltinSpecsValid pins the library's shape: validated as a set,
// unique names, and a usable -short subset.
func TestBuiltinSpecsValid(t *testing.T) {
	specs, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSet(specs); err != nil {
		t.Fatal(err)
	}
	short := 0
	for _, s := range specs {
		if s.Short {
			short++
		}
		if s.Description == "" {
			t.Errorf("%s: missing description", s.Name)
		}
	}
	if short < 5 {
		t.Errorf("only %d short scenarios, want >= 5 for the PR subset", short)
	}
}

// TestViolationContextLabel verifies the checker satellite end-to-end:
// a violation produced during a scenario names the scenario and phase.
func TestViolationContextLabel(t *testing.T) {
	s := mustBuiltin(t, "fault-storm")
	out, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Violations) == 0 {
		t.Fatal("fault-storm produced no violations")
	}
	if !strings.Contains(out.Violations[0], "[fault-storm/burst]") {
		t.Errorf("violation lacks scenario/phase context: %s", out.Violations[0])
	}
}

func mustBuiltin(t *testing.T, name string) Spec {
	t.Helper()
	s, err := BuiltinByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
