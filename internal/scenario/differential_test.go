package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// Differential coverage (satellite): every seed scenario must produce
// byte-identical JSONL across worker counts and identical results across
// the event-wheel and legacy stepping paths. Scenarios are deterministic
// by construction — seeds are derived from the spec, never from time or
// scheduling — so any divergence here is a real bug.

func shortSubset(t *testing.T) []Spec {
	t.Helper()
	specs, err := Builtin()
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		var kept []Spec
		for _, s := range specs {
			if s.Short {
				kept = append(kept, s)
			}
		}
		return kept
	}
	return specs
}

func TestWorkersDifferentialJSONL(t *testing.T) {
	specs := shortSubset(t)
	render := func(workers int) []byte {
		t.Helper()
		outcomes, err := RunSet(specs, Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, outcomes); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := render(1)
	many := render(4)
	if !bytes.Equal(one, many) {
		t.Fatalf("JSONL differs between -workers 1 and -workers 4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			firstDiffLine(one, many), firstDiffLine(many, one))
	}
}

func TestSteppingDifferentialResults(t *testing.T) {
	for _, s := range shortSubset(t) {
		t.Run(s.Name, func(t *testing.T) {
			wheel, err := Run(s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := Run(s, Options{LegacyStepping: true})
			if err != nil {
				t.Fatal(err)
			}
			a, err := json.Marshal(wheel.Result)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(legacy.Result)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("wheel vs legacy result differs:\nwheel:  %s\nlegacy: %s", a, b)
			}
			if wheel.Passed != legacy.Passed {
				t.Errorf("pass/fail differs: wheel=%v legacy=%v", wheel.Passed, legacy.Passed)
			}
		})
	}
}

// firstDiffLine returns the first line where a diverges from b, for
// readable failures.
func firstDiffLine(a, b []byte) []byte {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := range al {
		if i >= len(bl) || !bytes.Equal(al[i], bl[i]) {
			return al[i]
		}
	}
	return nil
}
