// Package scenario is the declarative black-box testing layer over the
// simulator: a JSON spec describes a multi-phase device usage pattern
// (workload mix, temperature and DVFS profile, refresh-fault schedules,
// daemon wakeups, suspend/resume events) plus the invariants the run
// must satisfy (refresh-ratio bounds via internal/checker, maximum
// slowdown and minimum savings against a baseline twin run, energy
// monotonicity across phases, zero uncorrectable errors under the
// retention model). The interpreter (run.go) drives internal/sim phase
// calls end-to-end and evaluates every declared invariant; cmd/meccscn
// and scenario_test.go are thin shells over it.
//
// Specs are JSON rather than a Go DSL so a scenario is data: the same
// file is listed, validated, run from the CLI, executed as a Go test,
// and fanned out as a CI matrix entry without recompiling.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"repro/internal/retention"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ErrBadSpec wraps every validation failure so callers can test with
// errors.Is while messages stay specific.
var ErrBadSpec = errors.New("scenario: invalid spec")

// Phase types.
const (
	// PhaseActive runs a workload burst; wakes the device if idle.
	PhaseActive = "active"
	// PhaseIdle enters self refresh for a duration; device must be awake.
	PhaseIdle = "idle"
	// PhaseDaemon models a background wakeup during idle: wake, run a
	// short burst, and drop back to idle for the phase duration. The
	// device must already be idle.
	PhaseDaemon = "daemon"
	// PhaseSuspendResume is one suspend/resume pair (GoIdle + WakeUp)
	// while awake — with repeat it hammers the ECC-Upgrade sweep.
	PhaseSuspendResume = "suspend_resume"
)

// Invariant kinds.
const (
	// InvMetricMax asserts a flattened result metric <= value.
	InvMetricMax = "metric_max"
	// InvMetricMin asserts a flattened result metric >= value.
	InvMetricMin = "metric_min"
	// InvMaxSlowdown asserts baselineIPC/IPC <= value (baseline twin).
	InvMaxSlowdown = "max_slowdown"
	// InvMinEnergySaving asserts 1 - energy/baselineEnergy >= value.
	InvMinEnergySaving = "min_energy_saving"
	// InvMinRefreshSaving asserts 1 - pulses/baselinePulses >= value.
	InvMinRefreshSaving = "min_refresh_saving"
	// InvEnergyMonotonic asserts cumulative energy never shrinks across
	// phase boundaries.
	InvEnergyMonotonic = "energy_monotonic"
	// InvCheckerClean asserts the run-time checker suite recorded no
	// violations.
	InvCheckerClean = "checker_clean"
	// InvExpectViolation asserts the named checker invariant DID fire —
	// the planted-regression form. Violations not covered by an
	// expect_violation entry always fail the scenario.
	InvExpectViolation = "expect_violation"
	// InvZeroUncorrectable asserts the probability of an uncorrectable
	// error across all idle periods (retention model at the phase
	// temperature and divider) stays below budget (default 1e-6).
	InvZeroUncorrectable = "zero_uncorrectable"
	// InvSteppingEquivalence asserts the event-wheel and legacy stepping
	// paths produce byte-identical results for this scenario.
	InvSteppingEquivalence = "stepping_equivalence"
)

// checkerInvariants are the invariant names internal/checker can report,
// for validating expect_violation references.
var checkerInvariants = map[string]bool{
	"refresh-ratio":  true,
	"mdt-superset":   true,
	"smd-gating":     true,
	"ecc-transition": true,
	"energy":         true,
	"cycles":         true,
}

// Spec is one declarative scenario.
type Spec struct {
	// Name identifies the scenario (lowercase, digits, dashes).
	Name string `json:"name"`
	// Description says what regime the scenario probes.
	Description string `json:"description,omitempty"`
	// Scheme is the protection scheme (default "mecc").
	Scheme string `json:"scheme,omitempty"`
	// Seed drives all workload generators (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Scale divides footprints and instruction counts like the meccsim
	// -scale flag (default 4000).
	Scale int `json:"scale,omitempty"`
	// TempC is the starting junction temperature (default nominal).
	TempC float64 `json:"temp_c,omitempty"`
	// SMD enables Selective Memory Downgrade.
	SMD bool `json:"smd,omitempty"`
	// SMDThresholdMPKC overrides the SMD threshold (default 2).
	SMDThresholdMPKC float64 `json:"smd_threshold_mpkc,omitempty"`
	// NoMDT disables Memory Downgrade Tracking.
	NoMDT bool `json:"no_mdt,omitempty"`
	// DividerBits overrides the idle refresh divider (default 4 = 1 s).
	DividerBits *int `json:"divider_bits,omitempty"`
	// Short marks the scenario cheap enough for the -short test subset
	// and PR-level CI.
	Short bool `json:"short,omitempty"`
	// Phases is the usage pattern, executed in order.
	Phases []Phase `json:"phases"`
	// Faults optionally schedules deterministic refresh faults.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Invariants are the pass/fail claims evaluated after the run.
	Invariants []Invariant `json:"invariants"`
}

// Phase is one step of the usage pattern.
type Phase struct {
	// Name labels checker violations and phase records; defaults to
	// "<type>[<index>]".
	Name string `json:"name,omitempty"`
	// Type is one of the Phase* constants.
	Type string `json:"type"`
	// Workload names a profile (SPEC, mobile, or "daemon") for active
	// and daemon phases.
	Workload string `json:"workload,omitempty"`
	// Instructions is the number of simulated instructions for the burst
	// (active and daemon phases). Scale shrinks workload footprints, not
	// this count, so specs state the burst length they actually run.
	Instructions int64 `json:"instructions,omitempty"`
	// DurationMS is the idle duration in milliseconds (idle, daemon, and
	// suspend_resume phases). Fractional values express sub-millisecond
	// suspends.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// TempC, when nonzero, changes the junction temperature at the start
	// of this phase — the thermal-drift hook.
	TempC float64 `json:"temp_c,omitempty"`
	// DVFSMult scales the workload's base CPI for this phase (the
	// first-order DVFS model; 2 = half clock). Zero means 1.
	DVFSMult float64 `json:"dvfs_mult,omitempty"`
	// Repeat executes the phase this many times (default 1).
	Repeat int `json:"repeat,omitempty"`
}

// FaultSpec schedules a deterministic run of consecutive refresh faults
// starting at a refresh issue sequence number — the storm shape the
// graceful-degradation tests use.
type FaultSpec struct {
	// Kind is "drop_refresh" or "delay_refresh".
	Kind string `json:"kind"`
	// StartSeq is the first refresh issue sequence number hit.
	StartSeq uint64 `json:"start_seq"`
	// Count is how many consecutive refreshes are hit.
	Count int `json:"count"`
	// DelayCycles postpones each delayed refresh (delay_refresh only).
	DelayCycles uint64 `json:"delay_cycles,omitempty"`
}

// Invariant is one declared claim.
type Invariant struct {
	// Kind is one of the Inv* constants.
	Kind string `json:"kind"`
	// Metric names a flattened result metric (metric_max, metric_min).
	Metric string `json:"metric,omitempty"`
	// Value is the bound (metric and slowdown/saving kinds).
	Value float64 `json:"value,omitempty"`
	// Invariant names the checker invariant expected to fire
	// (expect_violation).
	Invariant string `json:"invariant,omitempty"`
	// Budget overrides the uncorrectable-probability bar
	// (zero_uncorrectable; default reliability.TargetSystemFailure).
	Budget float64 `json:"budget,omitempty"`
}

// Duration returns the phase's idle duration.
func (p Phase) Duration() time.Duration {
	return time.Duration(p.DurationMS * float64(time.Millisecond))
}

// Label returns the phase's display name.
func (p Phase) Label(index int) string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("%s[%d]", p.Type, index)
}

// nameRE pins scenario names to something safe for file names, CI matrix
// entries, and -run regexps.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Parse decodes one spec from JSON, rejecting unknown fields so typos in
// scenario files fail loudly, then validates it.
func Parse(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: trailing data after spec object", ErrBadSpec)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// resolveProfile maps a workload name to its profile: the SPEC suite,
// the mobile set, or the idle-mode daemon.
func resolveProfile(name string) (workload.Profile, error) {
	if name == "daemon" {
		return workload.Daemon(), nil
	}
	if p, err := workload.ByName(name); err == nil {
		return p, nil
	}
	return workload.MobileByName(name)
}

// scheme returns the parsed scheme kind (default mecc).
func (s Spec) scheme() (sim.SchemeKind, error) {
	name := s.Scheme
	if name == "" {
		name = "mecc"
	}
	return sim.ParseScheme(name)
}

// scale returns the effective scale divisor.
func (s Spec) scale() int {
	if s.Scale <= 0 {
		return 4000
	}
	return s.Scale
}

// seed returns the effective generator seed.
func (s Spec) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// Validate checks the spec's static semantics: the phase state machine
// (no idle-while-idle, daemon only from idle, suspend/resume only while
// awake), positive durations and instruction counts, known workloads,
// in-range temperatures, and invariants that reference metrics the run
// will actually produce. All failures wrap ErrBadSpec.
func (s Spec) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrBadSpec, s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("%w: missing name", ErrBadSpec)
	}
	if !nameRE.MatchString(s.Name) {
		return bad("name must match %s", nameRE)
	}
	kind, err := s.scheme()
	if err != nil {
		return bad("%v", err)
	}
	if s.Scale < 0 {
		return bad("negative scale %d", s.Scale)
	}
	if s.TempC != 0 {
		if err := retention.CheckTemp(s.TempC); err != nil {
			return bad("temp_c: %v", err)
		}
	}
	if s.DividerBits != nil && (*s.DividerBits < 0 || *s.DividerBits > 8) {
		return bad("divider_bits %d out of range 0..8", *s.DividerBits)
	}
	if len(s.Phases) == 0 {
		return bad("no phases")
	}
	if err := s.validatePhases(bad); err != nil {
		return err
	}
	if err := s.validateFaults(bad); err != nil {
		return err
	}
	return s.validateInvariants(kind, bad)
}

func (s Spec) validatePhases(bad func(string, ...any) error) error {
	idle := false
	for i, p := range s.Phases {
		label := p.Label(i)
		if p.Repeat < 0 {
			return bad("phase %s: negative repeat %d", label, p.Repeat)
		}
		if p.DurationMS < 0 {
			// Mirrors sim.ErrBadDuration: durations are rejected here so
			// the run never starts, not clamped.
			return bad("phase %s: negative duration %g ms", label, p.DurationMS)
		}
		if p.Instructions < 0 {
			return bad("phase %s: negative instructions %d", label, p.Instructions)
		}
		if p.TempC != 0 {
			if err := retention.CheckTemp(p.TempC); err != nil {
				return bad("phase %s: temp_c: %v", label, err)
			}
		}
		if p.DVFSMult < 0 || p.DVFSMult > 8 {
			return bad("phase %s: dvfs_mult %g out of range (0,8]", label, p.DVFSMult)
		}
		switch p.Type {
		case PhaseActive:
			if p.Workload == "" || p.Instructions == 0 {
				return bad("phase %s: active needs workload and instructions", label)
			}
			if _, err := resolveProfile(p.Workload); err != nil {
				return bad("phase %s: %v", label, err)
			}
			idle = false
		case PhaseIdle:
			if idle {
				return bad("phase %s: idle while already idle (bad phase ordering)", label)
			}
			if p.DurationMS == 0 {
				return bad("phase %s: idle needs duration_ms", label)
			}
			idle = true
		case PhaseDaemon:
			if !idle {
				return bad("phase %s: daemon wakeup requires the device to be idle (bad phase ordering)", label)
			}
			if p.Workload == "" || p.Instructions == 0 || p.DurationMS == 0 {
				return bad("phase %s: daemon needs workload, instructions, and duration_ms", label)
			}
			if _, err := resolveProfile(p.Workload); err != nil {
				return bad("phase %s: %v", label, err)
			}
		case PhaseSuspendResume:
			if idle {
				return bad("phase %s: suspend_resume requires the device to be awake (bad phase ordering)", label)
			}
			if p.DurationMS == 0 {
				return bad("phase %s: suspend_resume needs duration_ms", label)
			}
		default:
			return bad("phase %s: unknown type %q", label, p.Type)
		}
	}
	return nil
}

func (s Spec) validateFaults(bad func(string, ...any) error) error {
	f := s.Faults
	if f == nil {
		return nil
	}
	switch f.Kind {
	case "drop_refresh", "delay_refresh":
	default:
		return bad("faults: unknown kind %q", f.Kind)
	}
	if f.Count <= 0 {
		return bad("faults: count must be positive, got %d", f.Count)
	}
	if f.Kind == "delay_refresh" && f.DelayCycles == 0 {
		return bad("faults: delay_refresh needs delay_cycles")
	}
	return nil
}

func (s Spec) validateInvariants(kind sim.SchemeKind, bad func(string, ...any) error) error {
	if len(s.Invariants) == 0 {
		return bad("no invariants declared")
	}
	keys := MetricKeys()
	for i, inv := range s.Invariants {
		switch inv.Kind {
		case InvMetricMax, InvMetricMin:
			if inv.Metric == "" {
				return bad("invariant %d (%s): missing metric", i, inv.Kind)
			}
			if !keys[inv.Metric] {
				return bad("invariant %d (%s): unknown metric %q (see meccscn list -metrics)", i, inv.Kind, inv.Metric)
			}
			if kind != sim.SchemeMECC && len(inv.Metric) > 5 && inv.Metric[:5] == "mecc." {
				return bad("invariant %d: metric %q requires scheme mecc, spec uses %s", i, inv.Metric, kind)
			}
		case InvMaxSlowdown, InvMinEnergySaving, InvMinRefreshSaving:
			if inv.Value <= 0 {
				return bad("invariant %d (%s): needs a positive value", i, inv.Kind)
			}
		case InvEnergyMonotonic, InvCheckerClean:
		case InvExpectViolation:
			if !checkerInvariants[inv.Invariant] {
				return bad("invariant %d (expect_violation): unknown checker invariant %q", i, inv.Invariant)
			}
		case InvZeroUncorrectable:
			if inv.Budget < 0 {
				return bad("invariant %d (zero_uncorrectable): negative budget", i)
			}
		case InvSteppingEquivalence:
		default:
			return bad("invariant %d: unknown kind %q", i, inv.Kind)
		}
	}
	return nil
}

// describe renders one invariant for reports.
func (inv Invariant) describe() string {
	switch inv.Kind {
	case InvMetricMax:
		return fmt.Sprintf("%s %s <= %g", inv.Kind, inv.Metric, inv.Value)
	case InvMetricMin:
		return fmt.Sprintf("%s %s >= %g", inv.Kind, inv.Metric, inv.Value)
	case InvMaxSlowdown, InvMinEnergySaving, InvMinRefreshSaving:
		return fmt.Sprintf("%s %g", inv.Kind, inv.Value)
	case InvExpectViolation:
		return fmt.Sprintf("%s %s", inv.Kind, inv.Invariant)
	case InvZeroUncorrectable:
		if inv.Budget > 0 {
			return fmt.Sprintf("%s budget %g", inv.Kind, inv.Budget)
		}
		return inv.Kind
	default:
		return inv.Kind
	}
}

// ValidateSet validates each spec and rejects duplicate scenario names
// across the set.
func ValidateSet(specs []Spec) error {
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("%w: duplicate scenario name %q", ErrBadSpec, s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// LoadFile parses and validates one spec file.
func LoadFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// LoadDir loads every *.json spec under dir (sorted by file name) and
// validates the set.
func LoadDir(dir string) ([]Spec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var specs []Spec
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		s, err := LoadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	if err := ValidateSet(specs); err != nil {
		return nil, err
	}
	return specs, nil
}

// loadFS loads every *.json spec from an fs.FS (the embedded library).
func loadFS(fsys fs.FS, dir string) ([]Spec, error) {
	entries, err := fs.ReadDir(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	specs := make([]Spec, 0, len(names))
	for _, name := range names {
		data, err := fs.ReadFile(fsys, dir+"/"+name)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		s, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		specs = append(specs, s)
	}
	if err := ValidateSet(specs); err != nil {
		return nil, err
	}
	return specs, nil
}
