package scenario

import (
	"embed"
	"fmt"
)

// specFS embeds the seed scenario library so the test binary, the CI
// matrix, and cmd/meccscn all run the exact committed specs without a
// working-directory dependency.
//
//go:embed specs/*.json
var specFS embed.FS

// Builtin returns the embedded seed scenarios, validated as a set and
// sorted by file name.
func Builtin() ([]Spec, error) {
	return loadFS(specFS, "specs")
}

// BuiltinByName returns one embedded scenario.
func BuiltinByName(name string) (Spec, error) {
	specs, err := Builtin()
	if err != nil {
		return Spec{}, err
	}
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("%w: unknown scenario %q", ErrBadSpec, name)
}
