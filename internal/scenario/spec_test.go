package scenario

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func validSpecJSON() string {
	return `{
	  "name": "t",
	  "phases": [
	    {"type": "active", "workload": "gcc", "instructions": 1000},
	    {"type": "idle", "duration_ms": 1}
	  ],
	  "invariants": [{"kind": "checker_clean"}]
	}`
}

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t" || len(s.Phases) != 2 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, mutate, want string
	}{
		{"unknown-field", `"name": "t",`, ""}, // handled below
		{"idle-while-idle", "", "bad phase ordering"},
		{"unknown-metric", "", "unknown metric"},
		{"negative-duration", "", "negative duration"},
		{"unknown-workload", "", "unknown benchmark"},
	}
	_ = cases
	reject := func(t *testing.T, body, want string) {
		t.Helper()
		_, err := Parse([]byte(body))
		if !errors.Is(err, ErrBadSpec) {
			t.Fatalf("err = %v, want ErrBadSpec", err)
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Errorf("err %q does not mention %q", err, want)
		}
	}
	t.Run("unknown-field", func(t *testing.T) {
		reject(t, strings.Replace(validSpecJSON(), `"name": "t",`, `"name": "t", "tepm_c": 55,`, 1), "tepm_c")
	})
	t.Run("idle-while-idle", func(t *testing.T) {
		reject(t, `{"name":"t","phases":[
		  {"type":"active","workload":"gcc","instructions":1000},
		  {"type":"idle","duration_ms":1},
		  {"type":"idle","duration_ms":1}],
		  "invariants":[{"kind":"checker_clean"}]}`, "bad phase ordering")
	})
	t.Run("negative-duration", func(t *testing.T) {
		reject(t, `{"name":"t","phases":[
		  {"type":"active","workload":"gcc","instructions":1000},
		  {"type":"idle","duration_ms":-5}],
		  "invariants":[{"kind":"checker_clean"}]}`, "negative duration")
	})
	t.Run("unknown-metric", func(t *testing.T) {
		reject(t, `{"name":"t","phases":[
		  {"type":"active","workload":"gcc","instructions":1000}],
		  "invariants":[{"kind":"metric_max","metric":"no.such.metric","value":1}]}`, "unknown metric")
	})
	t.Run("mecc-metric-on-baseline", func(t *testing.T) {
		reject(t, `{"name":"t","scheme":"baseline","phases":[
		  {"type":"active","workload":"gcc","instructions":1000}],
		  "invariants":[{"kind":"metric_min","metric":"mecc.sweeps","value":1}]}`, "requires scheme mecc")
	})
	t.Run("daemon-while-awake", func(t *testing.T) {
		reject(t, `{"name":"t","phases":[
		  {"type":"daemon","workload":"daemon","instructions":1000,"duration_ms":1}],
		  "invariants":[{"kind":"checker_clean"}]}`, "bad phase ordering")
	})
	t.Run("bad-temp", func(t *testing.T) {
		reject(t, `{"name":"t","temp_c":300,"phases":[
		  {"type":"active","workload":"gcc","instructions":1000}],
		  "invariants":[{"kind":"checker_clean"}]}`, "temp")
	})
	t.Run("bad-expect-violation", func(t *testing.T) {
		reject(t, `{"name":"t","phases":[
		  {"type":"active","workload":"gcc","instructions":1000}],
		  "invariants":[{"kind":"expect_violation","invariant":"no-such-invariant"}]}`, "unknown checker invariant")
	})
}

func TestValidateSetRejectsDuplicates(t *testing.T) {
	s, err := Parse([]byte(validSpecJSON()))
	if err != nil {
		t.Fatal(err)
	}
	err = ValidateSet([]Spec{s, s})
	if !errors.Is(err, ErrBadSpec) || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate-name ErrBadSpec", err)
	}
}

func TestMetricKeysCoverResultAndDerived(t *testing.T) {
	keys := MetricKeys()
	for _, want := range []string{
		"ipc", "mpki", "dram.n_self_refresh_pulses", "ctrl.refreshes_dropped",
		"mecc.sweeps", "mecc.smd_enables", "energy.self_refresh_j",
		MetricTotalEnergyJ, MetricTotalRefreshPulses, MetricIdleTimeSec,
		MetricUncorrectableProb,
	} {
		if !keys[want] {
			t.Errorf("metric key %q missing", want)
		}
	}
	if keys["benchmark"] || keys["scheme"] {
		t.Error("identity fields leaked into the metric key set")
	}
}

func TestFlattenSkipsNilMECC(t *testing.T) {
	flat := Flatten(sim.Result{IPC: 1.5})
	if _, ok := flat["mecc.sweeps"]; ok {
		t.Error("nil MECC stats produced mecc.* metrics")
	}
	if flat["ipc"] != 1.5 {
		t.Errorf("ipc = %g, want 1.5", flat["ipc"])
	}
}

func TestUncorrectableProbRegimes(t *testing.T) {
	// A 64 ms-equivalent exposure at nominal temperature is safe.
	safe := uncorrectableProb([]idleEpisode{{dur: 10_000_000, tempC: 45, divider: 0}}, sim.SchemeMECC)
	if safe > 1e-12 {
		t.Errorf("nominal 64 ms exposure: prob = %g, want ~0", safe)
	}
	// A full 1 s divided period at 85 degC is catastrophic.
	hot := uncorrectableProb([]idleEpisode{{dur: 2_000_000_000, tempC: 85, divider: 4}}, sim.SchemeMECC)
	if hot < 0.9 {
		t.Errorf("hot divided idle: prob = %g, want ~1", hot)
	}
	// No episodes: exactly zero (not -0).
	if got := uncorrectableProb(nil, sim.SchemeMECC); got != 0 {
		t.Errorf("no episodes: prob = %g, want 0", got)
	}
	// Weaker codes fail earlier: SECDED's probability at a mildly hot
	// divided idle must exceed MECC's.
	ep := []idleEpisode{{dur: 1_200_000_000, tempC: 55, divider: 4}}
	if m, s := uncorrectableProb(ep, sim.SchemeMECC), uncorrectableProb(ep, sim.SchemeSECDED); s <= m {
		t.Errorf("SECDED prob %g <= MECC prob %g", s, m)
	}
}
