package memdata

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/line"
)

// runSweepScenario drives one memory through a deterministic write /
// idle / fault / wake workload and returns it for state comparison.
func runSweepScenario(t *testing.T, workers int) *Memory {
	t.Helper()
	m, err := New(testLines, core.DefaultConfig(testLines), 7)
	if err != nil {
		t.Fatal(err)
	}
	p := batch.NewPool(workers)
	t.Cleanup(p.Close)
	m.SetSweepPool(p)
	if err := m.ExitIdle(0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	now := uint64(0)
	for i := 0; i < 1500; i++ {
		now += 50
		if err := m.Write(uint64(rng.Intn(testLines)), randLine(rng), now); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 3; cycle++ {
		now += 1000
		if _, err := m.EnterIdle(now); err != nil {
			t.Fatal(err)
		}
		// Plant real decoder work so screen-failing lines exercise the
		// scalar fallback path too.
		if err := m.IdleFor(5*time.Minute, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		now += 1_000_000
		if err := m.ExitIdle(now); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			now += 50
			addr := uint64(rng.Intn(testLines))
			if rng.Intn(2) == 0 {
				if _, err := m.Read(addr, now); err != nil {
					t.Fatal(err)
				}
			} else if err := m.Write(addr, randLine(rng), now); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

// TestSweepDeterministicAcrossWorkerCounts is the seed-determinism
// guard: the sharded sweep must produce bit-identical memory contents,
// spare fields, stats and controller mode state whether it runs on 1, 4
// or 16 workers.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	ref := runSweepScenario(t, 1)
	refWeak := ref.Controller().AppendWeakLines(nil)
	for _, workers := range []int{4, 16} {
		m := runSweepScenario(t, workers)
		if m.Stats() != ref.Stats() {
			t.Fatalf("workers=%d: stats diverged: %+v vs %+v", workers, m.Stats(), ref.Stats())
		}
		for addr := range ref.data {
			if m.data[addr] != ref.data[addr] {
				t.Fatalf("workers=%d: data[%d] diverged", workers, addr)
			}
			if m.spare[addr] != ref.spare[addr] {
				t.Fatalf("workers=%d: spare[%d] diverged", workers, addr)
			}
		}
		weak := m.Controller().AppendWeakLines(nil)
		if len(weak) != len(refWeak) {
			t.Fatalf("workers=%d: %d weak lines, want %d", workers, len(weak), len(refWeak))
		}
		for i := range weak {
			if weak[i] != refWeak[i] {
				t.Fatalf("workers=%d: weak line set diverged at %d", workers, i)
			}
		}
	}
}

// TestEnterIdleZeroAllocs proves the steady-state upgrade sweep is
// allocation-free: after a warm-up cycle has grown the persistent
// buffers, an EnterIdle over thousands of weak lines must not touch the
// heap. Lines are re-weakened between runs outside the measured region.
func TestEnterIdleZeroAllocs(t *testing.T) {
	m, err := New(testLines, core.DefaultConfig(testLines), 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	now := uint64(0)
	weaken := func() {
		if err := m.ExitIdle(now); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < testLines; i++ {
			now += 10
			if err := m.Write(uint64(i), randLine(rng), now); err != nil {
				t.Fatal(err)
			}
		}
		now += 1000
	}
	weaken()
	if _, err := m.EnterIdle(now); err != nil { // warm-up: grows weakBuf
		t.Fatal(err)
	}
	var sweepErr error
	weaken()
	allocs := testing.AllocsPerRun(4, func() {
		if _, err := m.EnterIdle(now); err != nil {
			sweepErr = err
			return
		}
		// Not measured against the sweep budget conceptually, but kept
		// inside so every iteration starts from a fresh weak population.
		weaken()
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	// The weaken() writes churn controller-side map state, so measure the
	// sweep alone too: with everything strong the second call must do
	// nothing and allocate nothing.
	if n := testing.AllocsPerRun(10, func() {
		if _, err := m.EnterIdle(now); err != nil {
			sweepErr = err
			return
		}
		if err := m.ExitIdle(now); err != nil {
			sweepErr = err
		}
		now += 1000
	}); n != 0 {
		t.Fatalf("idle/active cycle with empty sweep allocates %v per run, want 0", n)
	}
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	t.Logf("full sweep cycle (incl. %d re-weakening writes): %.1f allocs/run", testLines, allocs)
}

// TestSweepMatchesUnshardedReference pins the sharded screen-first sweep
// against a straight-line reference: decode every weak line, skip
// uncorrectables, re-encode strong.
func TestSweepMatchesUnshardedReference(t *testing.T) {
	build := func() *Memory {
		m, err := New(2048, core.DefaultConfig(2048), 21)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.ExitIdle(0); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(22))
		now := uint64(0)
		for i := 0; i < 2048; i++ {
			now += 10
			if err := m.Write(uint64(i), randLine(rng), now); err != nil {
				t.Fatal(err)
			}
		}
		// Corrupt a scattering of lines so some screens fail: single-bit
		// (correctable weak) and double-bit (detected-uncorrectable weak)
		// faults.
		for i := 0; i < 2048; i += 64 {
			m.InjectBitFlip(uint64(i), i%line.Bits)
		}
		for i := 32; i < 2048; i += 256 {
			m.InjectBitFlip(uint64(i), 77)
			m.InjectBitFlip(uint64(i), 301)
		}
		return m
	}

	m := build()
	ref := build()
	refWeak := ref.Controller().AppendWeakLines(nil)
	wantUpgraded, wantUncorrectable := uint64(0), uint64(0)
	refData := make([]line.Line, len(ref.data))
	refSpare := make([]uint64, len(ref.spare))
	copy(refData, ref.data)
	copy(refSpare, ref.spare)
	for _, addr := range refWeak {
		fixed, ev := ref.codec.Decode(refData[addr], refSpare[addr])
		if ev.Result.Uncorrectable {
			wantUncorrectable++
			continue
		}
		refData[addr] = fixed
		refSpare[addr] = ref.codec.Encode(fixed, ecc.ModeStrong)
		wantUpgraded++
	}

	now := uint64(40_000)
	if _, err := m.EnterIdle(now); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.UpgradedLines != wantUpgraded || s.Uncorrectable != wantUncorrectable {
		t.Fatalf("sweep counted %d/%d (upgraded/uncorrectable), reference %d/%d",
			s.UpgradedLines, s.Uncorrectable, wantUpgraded, wantUncorrectable)
	}
	if wantUncorrectable == 0 {
		t.Fatal("no uncorrectable lines planted — reference test proved nothing")
	}
	for addr := range refData {
		if m.data[addr] != refData[addr] {
			t.Fatalf("data[%d] differs from reference", addr)
		}
		if m.spare[addr] != refSpare[addr] {
			t.Fatalf("spare[%d] differs from reference", addr)
		}
	}
}
