// Package memdata is the functional (data-storing) memory model: it
// holds real line contents and their 64-bit spare fields, encodes and
// decodes through the actual morphable codec of internal/ecc, takes its
// per-line mode decisions from the MECC controller of internal/core, and
// lets retention faults be injected while the memory self-refreshes
// slowly in idle mode. Where internal/sim answers "how fast/expensive"
// with a latency model, memdata answers "is the data actually intact" —
// the end-to-end integration the integrity experiments and examples use.
package memdata

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/line"
	"repro/internal/retention"
)

// Errors returned by the memory.
var (
	ErrBadAddress = errors.New("memdata: address out of range")
	// ErrDataLoss is returned by Read when a line decodes as
	// uncorrectable — the condition the Table I provisioning makes
	// astronomically rare at the paper's BER.
	ErrDataLoss = errors.New("memdata: uncorrectable line")
)

// Stats counts functional-memory events.
type Stats struct {
	// Reads and Writes count accesses.
	Reads, Writes uint64
	// CorrectedBits totals repaired bit errors across all decodes.
	CorrectedBits uint64
	// Uncorrectable counts reads that hit ErrDataLoss.
	Uncorrectable uint64
	// TriedBoth counts mode-bit ties resolved by trial decode.
	TriedBoth uint64
	// UpgradedLines and DowngradedLines count re-encodings.
	UpgradedLines, DowngradedLines uint64
	// InjectedErrors counts retention faults planted by IdleFor.
	InjectedErrors uint64
}

// sweepShardStats is one worker's slice of the sweep counters, padded
// out to a cache line so shards never contend on the same line while
// counting. Totals are folded into Stats in shard-index order after the
// join, so they are bit-identical for any worker count.
type sweepShardStats struct {
	upgraded      uint64
	uncorrectable uint64
	_             [6]uint64 // pad to 64 bytes
}

// Memory is a functional MECC memory. Not safe for concurrent use.
type Memory struct {
	codec *ecc.Morphable
	ctl   *core.Controller
	model *retention.Model

	data   []line.Line
	spare  []uint64
	inited []bool

	// Sweep machinery, all persistent so a steady-state EnterIdle runs
	// without heap allocations: the worker pool, the weak-line address
	// buffer (regrown at most O(log n) times over the memory's life),
	// the per-shard counters, and the shard closure built once at
	// construction. sweepWeak carries the current sweep's address slice
	// to the closure; it is only set while EnterIdle runs.
	pool       *batch.Pool
	weakBuf    []uint64
	sweepWeak  []uint64
	sweepStats []sweepShardStats
	sweepFn    func(worker, lo, hi int)

	seed  int64
	epoch int64
	stats Stats
}

// New builds a functional memory of totalLines cache lines with the
// given MECC configuration (TotalLines is overridden) and the paper's
// default codec pair. Lines start zeroed in strong mode, memory idle —
// call ExitIdle before accessing.
func New(totalLines uint64, meccCfg core.Config, seed int64) (*Memory, error) {
	codec, err := ecc.NewDefaultMorphable()
	if err != nil {
		return nil, err
	}
	return NewWithCodec(totalLines, meccCfg, codec, seed)
}

// NewWithCodec builds a functional memory over an arbitrary morphable
// codec pair (e.g. a no-protection weak code, for the weak-code
// ablation).
func NewWithCodec(totalLines uint64, meccCfg core.Config, codec *ecc.Morphable, seed int64) (*Memory, error) {
	if totalLines == 0 {
		return nil, fmt.Errorf("%w: zero lines", core.ErrBadConfig)
	}
	meccCfg.TotalLines = totalLines
	ctl, err := core.New(meccCfg)
	if err != nil {
		return nil, err
	}
	m := &Memory{
		codec:  codec,
		ctl:    ctl,
		model:  retention.DefaultModel(),
		data:   make([]line.Line, totalLines),
		spare:  make([]uint64, totalLines),
		inited: make([]bool, totalLines),
		seed:   seed,
	}
	m.setPool(batch.Default())
	m.sweepFn = m.sweepShard
	// Boot state: everything encoded strong (all-zero data).
	zeroSpare := codec.Encode(line.Line{}, ecc.ModeStrong)
	for i := range m.spare {
		m.spare[i] = zeroSpare
	}
	return m, nil
}

// Controller exposes the underlying MECC controller (mode table, MDT,
// SMD state) for inspection.
func (m *Memory) Controller() *core.Controller { return m.ctl }

// Stats returns a copy of the counters.
func (m *Memory) Stats() Stats { return m.stats }

func (m *Memory) checkAddr(addr uint64) error {
	if addr >= uint64(len(m.data)) {
		return fmt.Errorf("%w: %d", ErrBadAddress, addr)
	}
	return nil
}

// Write stores a line in active mode. Per the MECC write path, data is
// re-encoded in weak ECC when downgrades are enabled, otherwise in the
// line's current mode.
func (m *Memory) Write(addr uint64, data line.Line, nowCPU uint64) error {
	if err := m.checkAddr(addr); err != nil {
		return err
	}
	if err := m.ctl.OnWrite(addr, nowCPU); err != nil {
		return err
	}
	mode := ecc.ModeWeak
	if m.ctl.IsStrong(addr) {
		mode = ecc.ModeStrong
	}
	m.data[addr] = data
	m.spare[addr] = m.codec.Encode(data, mode)
	m.inited[addr] = true
	m.stats.Writes++
	return nil
}

// Read fetches and decodes a line in active mode, applying the MECC
// demand-downgrade policy: a line found in strong mode is re-encoded
// weak and written back (when downgrades are enabled). The returned
// line is the corrected data.
func (m *Memory) Read(addr uint64, nowCPU uint64) (line.Line, error) {
	if err := m.checkAddr(addr); err != nil {
		return line.Line{}, err
	}
	out, err := m.ctl.OnRead(addr, nowCPU)
	if err != nil {
		return line.Line{}, err
	}
	fixed, ev := m.codec.Decode(m.data[addr], m.spare[addr])
	m.stats.Reads++
	m.stats.CorrectedBits += uint64(ev.Result.CorrectedBits)
	if ev.TriedBoth {
		m.stats.TriedBoth++
	}
	if ev.Result.Uncorrectable {
		m.stats.Uncorrectable++
		return line.Line{}, fmt.Errorf("%w: address %d", ErrDataLoss, addr)
	}
	if ev.Result.CorrectedBits > 0 || out.Downgrade {
		// Scrub on correction; re-encode per the controller's decision.
		mode := ecc.ModeStrong
		if out.Downgrade || !m.ctl.IsStrong(addr) {
			mode = ecc.ModeWeak
		}
		m.data[addr] = fixed
		m.spare[addr] = m.codec.Encode(fixed, mode)
		if out.Downgrade {
			m.stats.DowngradedLines++
		}
	}
	return fixed, nil
}

// sweepChunk is the number of lines a batched sweep gathers per round:
// large enough to keep every worker of the codec pool busy, small enough
// to bound the scratch buffers at a few hundred KB.
const sweepChunk = 4096

// minSweepPerWorker is the smallest shard worth shipping to a sweep
// worker: a screened upgrade is a few hundred nanoseconds per line, so
// 256 lines keep the fork-join overhead well under 1%.
const minSweepPerWorker = 256

// setPool installs the sweep worker pool and sizes the per-shard
// counters to match.
func (m *Memory) setPool(p *batch.Pool) {
	m.pool = p
	m.sweepStats = make([]sweepShardStats, p.Workers())
}

// SetSweepPool replaces the worker pool behind the upgrade sweep (the
// process-wide batch.Default() unless overridden). Tests use it to pin
// the worker count when checking that sweep results are bit-identical
// for any sharding. The memory does not own the pool; Close it (if not
// the default) when done.
func (m *Memory) SetSweepPool(p *batch.Pool) { m.setPool(p) }

// sweepShard upgrades the weak lines m.sweepWeak[lo:hi] in place. It is
// the persistent shard body run by the pool workers: shards touch
// disjoint addresses and count into their own padded stats slot, so the
// loop is data-race-free and needs no locks. Per-line work is the fast
// screen (word-sliced weak re-encode) plus a strong table encode; only
// lines whose screen fails — retention victims — pay the scalar
// morphable decode.
//
//meccvet:hotpath
func (m *Memory) sweepShard(worker, lo, hi int) {
	st := &m.sweepStats[worker]
	for _, addr := range m.sweepWeak[lo:hi] {
		data := m.data[addr]
		spare := m.spare[addr]
		if m.codec.ScreenWeakClean(data, spare) {
			m.spare[addr] = m.codec.Encode(data, ecc.ModeStrong)
			st.upgraded++
			continue
		}
		fixed, ev := m.codec.Decode(data, spare)
		if ev.Result.Uncorrectable {
			st.uncorrectable++
			continue
		}
		m.data[addr] = fixed
		m.spare[addr] = m.codec.Encode(fixed, ecc.ModeStrong)
		st.upgraded++
	}
}

// EnterIdle performs the real ECC-Upgrade sweep: every line the
// controller upgrades is re-encoded with the strong code, after either
// passing the weak-clean screen or (rarely) a full corrective decode.
// The weak-line list is sharded across the persistent worker pool; the
// address buffer, shard counters and shard closure are all reused across
// quanta, so a steady-state sweep performs no heap allocations — the
// software analogue of the paper's 640 M-cycle background sweep being
// bandwidth-, not latency-, bound. Results are bit-identical for any
// worker count: lines are independent and the per-shard counters are
// folded in shard order. It returns the controller's transition summary.
func (m *Memory) EnterIdle(nowCPU uint64) (core.IdleTransition, error) {
	// Snapshot which lines are weak (word-at-a-time over the mode bitset)
	// before the controller flips them.
	m.weakBuf = m.ctl.AppendWeakLines(m.weakBuf[:0])
	tr, err := m.ctl.EnterIdle(nowCPU)
	if err != nil {
		return tr, err
	}
	for i := range m.sweepStats {
		m.sweepStats[i] = sweepShardStats{}
	}
	m.sweepWeak = m.weakBuf
	m.pool.Run(len(m.sweepWeak), minSweepPerWorker, m.sweepFn)
	m.sweepWeak = nil
	for i := range m.sweepStats {
		m.stats.UpgradedLines += m.sweepStats[i].upgraded
		m.stats.Uncorrectable += m.sweepStats[i].uncorrectable
	}
	return tr, nil
}

// ExitIdle wakes the memory into active mode.
func (m *Memory) ExitIdle(nowCPU uint64) error { return m.ctl.ExitIdle(nowCPU) }

// IdleFor models an idle period at the given self-refresh period:
// retention faults strike every stored bit (data and spare alike) with
// the model's BER for that period. Only initialized lines are touched —
// uninitialized ones hold the pre-encoded zero pattern and are skipped
// to keep large memories cheap.
func (m *Memory) IdleFor(duration time.Duration, refreshPeriod time.Duration) error {
	if m.ctl.Phase() != core.PhaseIdle {
		return fmt.Errorf("%w: IdleFor in %v", core.ErrBadPhase, m.ctl.Phase())
	}
	ber := m.model.BER(refreshPeriod)
	if ber <= 0 {
		return nil
	}
	// Deterministic per-epoch injector.
	m.epoch++
	inj := retention.NewInjector(m.seed^m.epoch<<16, ber)
	_ = duration    // the paper's model: failures depend on period, not dwell
	var flips []int // reused per line: no allocation when a line survives
	for addr := range m.data {
		if !m.inited[addr] {
			continue
		}
		flips = inj.FlipPositionsAppend(line.Bits+ecc.SpareBits, flips[:0])
		for _, pos := range flips {
			m.stats.InjectedErrors++
			if pos < line.Bits {
				m.data[addr] = m.data[addr].FlipBit(pos)
			} else {
				m.spare[addr] ^= uint64(1) << (pos - line.Bits)
			}
		}
	}
	return nil
}

// InjectBitFlip flips one stored data bit of a line — a soft-error
// (alpha strike) event for the fault-injection experiments. Bits beyond
// the data width land in the spare field.
func (m *Memory) InjectBitFlip(addr uint64, bit int) {
	if addr >= uint64(len(m.data)) {
		return
	}
	if bit < line.Bits {
		m.data[addr] = m.data[addr].FlipBit(bit)
	} else {
		m.spare[addr] ^= uint64(1) << ((bit - line.Bits) % ecc.SpareBits)
	}
	m.stats.InjectedErrors++
}

// Scrub decodes and re-encodes every initialized line in place (idle
// mode), clearing accumulated correctable errors — the maintenance
// operation a real controller would fold into the upgrade sweep. Decoding
// runs in batched chunks through the codec worker pool; corrected lines
// (rare) are re-encoded individually. It returns the number of corrected
// bits, or an error naming the first uncorrectable line — lines past the
// failure are left untouched, exactly as the sequential scrub did.
func (m *Memory) Scrub() (int, error) {
	addrs := make([]uint64, 0, sweepChunk)
	var (
		datas  []line.Line
		spares []uint64
		evs    []ecc.DecodeEvent
	)
	corrected := 0
	flush := func() error {
		if len(addrs) == 0 {
			return nil
		}
		if datas == nil {
			datas = make([]line.Line, sweepChunk)
			spares = make([]uint64, sweepChunk)
			evs = make([]ecc.DecodeEvent, sweepChunk)
		}
		for i, addr := range addrs {
			datas[i] = m.data[addr]
			spares[i] = m.spare[addr]
		}
		cd, cs, ce := datas[:len(addrs)], spares[:len(addrs)], evs[:len(addrs)]
		m.codec.DecodeBatch(cd, cs, cd, ce)
		for i, addr := range addrs {
			if ce[i].Result.Uncorrectable {
				m.stats.Uncorrectable++
				return fmt.Errorf("%w: address %d", ErrDataLoss, addr)
			}
			if ce[i].Result.CorrectedBits > 0 {
				corrected += ce[i].Result.CorrectedBits
				mode := ecc.ModeWeak
				if m.ctl.IsStrong(addr) {
					mode = ecc.ModeStrong
				}
				m.data[addr] = cd[i]
				m.spare[addr] = m.codec.Encode(cd[i], mode)
			}
		}
		addrs = addrs[:0]
		return nil
	}
	for addr := range m.data {
		if !m.inited[addr] {
			continue
		}
		addrs = append(addrs, uint64(addr))
		if len(addrs) == sweepChunk {
			if err := flush(); err != nil {
				return corrected, err
			}
		}
	}
	if err := flush(); err != nil {
		return corrected, err
	}
	m.stats.CorrectedBits += uint64(corrected)
	return corrected, nil
}
