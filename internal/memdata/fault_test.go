package memdata

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/line"
)

// patternLine builds a deterministic non-trivial line for an address.
func patternLine(addr uint64) line.Line {
	var l line.Line
	for w := range l {
		l[w] = addr*0x9e3779b97f4a7c15 + uint64(w)*0xbf58476d1ce4e5b9
	}
	return l
}

// writeAllStrong fills every line and upgrades the memory to strong mode
// via the real idle sweep, leaving it idle.
func writeAllStrong(t *testing.T, m *Memory, lines uint64) {
	t.Helper()
	if err := m.ExitIdle(0); err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < lines; addr++ {
		if err := m.Write(addr, patternLine(addr), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.EnterIdle(2); err != nil {
		t.Fatal(err)
	}
}

// TestFaultPlanGracefulDegradation drives a deterministic fault schedule
// (checker.RandomPlan) into stored lines and requires graceful behavior
// from the read path: corruption within the strong code's correction
// capability must read back bit-exact, and nothing may panic. Faults are
// capped at t=6 per line so every read is within provisioning.
func TestFaultPlanGracefulDegradation(t *testing.T) {
	const lines = 128
	m, err := New(lines, core.DefaultConfig(lines), 1)
	if err != nil {
		t.Fatal(err)
	}
	writeAllStrong(t, m, lines)

	plan := checker.RandomPlan(42, 300, lines, 1, checker.FlipDataBit, checker.FlipCheckBit)
	perLine := make(map[uint64]int)
	applied := 0
	for _, f := range plan.MemoryFaults() {
		if perLine[f.LineAddr] >= 6 {
			continue
		}
		perLine[f.LineAddr]++
		m.InjectBitFlip(f.LineAddr, f.Bit)
		applied++
	}
	if applied < 100 {
		t.Fatalf("plan applied only %d faults", applied)
	}

	if err := m.ExitIdle(3); err != nil {
		t.Fatal(err)
	}
	for addr := uint64(0); addr < lines; addr++ {
		got, err := m.Read(addr, 4)
		if err != nil {
			t.Fatalf("line %d with %d injected faults: %v", addr, perLine[addr], err)
		}
		if got != patternLine(addr) {
			t.Fatalf("line %d: silent corruption after %d faults", addr, perLine[addr])
		}
	}
	if m.Stats().CorrectedBits == 0 {
		t.Error("no bits corrected — faults did not land")
	}
	if m.Stats().Uncorrectable != 0 {
		t.Errorf("unexpected uncorrectable lines: %d", m.Stats().Uncorrectable)
	}
}

// TestUncorrectableIsTypedErrorNotPanic corrupts lines far beyond the
// code's capability and requires the failure to surface as a typed
// ErrDataLoss — never a panic, never silently wrong data presented as
// clean. Weak (downgraded) lines are exercised too: SECDED must correct
// one flip exactly and report two as data loss.
func TestUncorrectableIsTypedErrorNotPanic(t *testing.T) {
	const lines = 16
	m, err := New(lines, core.DefaultConfig(lines), 1)
	if err != nil {
		t.Fatal(err)
	}
	writeAllStrong(t, m, lines)
	if err := m.ExitIdle(3); err != nil {
		t.Fatal(err)
	}

	// Shred line 0: 25 scattered flips across data and check bits.
	rng := rand.New(rand.NewSource(9))
	for _, pos := range rng.Perm(line.Bits + 60)[:25] {
		m.InjectBitFlip(0, pos)
	}
	if _, err := m.Read(0, 4); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("shredded line: err = %v, want ErrDataLoss", err)
	}
	if m.Stats().Uncorrectable != 1 {
		t.Errorf("Uncorrectable = %d, want 1", m.Stats().Uncorrectable)
	}

	// Reading line 1 downgrades it to weak (SECDED); one flip corrects...
	if _, err := m.Read(1, 5); err != nil {
		t.Fatal(err)
	}
	m.InjectBitFlip(1, 100)
	got, err := m.Read(1, 6)
	if err != nil || got != patternLine(1) {
		t.Fatalf("weak line single flip: got err %v", err)
	}
	// ...and two flips are detected data loss, not silent corruption.
	if _, err := m.Read(2, 7); err != nil {
		t.Fatal(err)
	}
	m.InjectBitFlip(2, 100)
	m.InjectBitFlip(2, 301)
	if _, err := m.Read(2, 8); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("weak line double flip: err = %v, want ErrDataLoss", err)
	}

	// The failed lines stay failed on re-read (no state corruption), and
	// healthy neighbors are unaffected.
	if _, err := m.Read(0, 9); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("re-read of shredded line: err = %v, want ErrDataLoss", err)
	}
	for addr := uint64(3); addr < lines; addr++ {
		got, err := m.Read(addr, 10)
		if err != nil || got != patternLine(addr) {
			t.Fatalf("healthy line %d after faults elsewhere: %v", addr, err)
		}
	}
}
