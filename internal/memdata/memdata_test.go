package memdata

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/line"
	"repro/internal/retention"
)

const testLines = 4096 // 256 KB functional memory for tests

func newMemory(t *testing.T) *Memory {
	t.Helper()
	m, err := New(testLines, core.DefaultConfig(testLines), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ExitIdle(0); err != nil {
		t.Fatal(err)
	}
	return m
}

func randLine(rng *rand.Rand) line.Line {
	var ln line.Line
	for w := range ln {
		ln[w] = rng.Uint64()
	}
	return ln
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, core.DefaultConfig(1), 1); err == nil {
		t.Error("zero lines: want error")
	}
	bad := core.DefaultConfig(testLines)
	bad.DividerBits = -1
	if _, err := New(testLines, bad, 1); err == nil {
		t.Error("bad mecc config: want error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := newMemory(t)
	rng := rand.New(rand.NewSource(2))
	golden := map[uint64]line.Line{}
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(testLines))
		data := randLine(rng)
		if err := m.Write(addr, data, uint64(i)); err != nil {
			t.Fatal(err)
		}
		golden[addr] = data
	}
	for addr, want := range golden {
		got, err := m.Read(addr, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("addr %d: data mismatch", addr)
		}
	}
	if m.Stats().Uncorrectable != 0 {
		t.Error("unexpected uncorrectable")
	}
	if _, err := m.Read(testLines, 0); err == nil {
		t.Error("out-of-range read: want error")
	}
	if err := m.Write(testLines, line.Line{}, 0); err == nil {
		t.Error("out-of-range write: want error")
	}
}

func TestColdReadDowngradesAndPreservesZero(t *testing.T) {
	m := newMemory(t)
	// Boot state: strong-encoded zeros. First read decodes strong,
	// downgrades, and returns zero.
	got, err := m.Read(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Fatal("cold read returned nonzero data")
	}
	if m.Controller().IsStrong(7) {
		t.Error("line should be weak after demand read")
	}
	if m.Stats().DowngradedLines != 1 {
		t.Errorf("downgrades = %d", m.Stats().DowngradedLines)
	}
}

// TestFullIdleActiveCycleWithFaults is the end-to-end MECC scenario:
// write data, go idle, let retention faults strike at the 1 s-refresh
// BER, wake up, and verify every byte survived.
func TestFullIdleActiveCycleWithFaults(t *testing.T) {
	m := newMemory(t)
	rng := rand.New(rand.NewSource(3))
	golden := make([]line.Line, 512)
	now := uint64(0)
	for i := range golden {
		golden[i] = randLine(rng)
		now += 100
		if err := m.Write(uint64(i), golden[i], now); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 4; cycle++ {
		tr, err := m.EnterIdle(now)
		if err != nil {
			t.Fatal(err)
		}
		if tr.LinesUpgraded == 0 && cycle == 0 {
			t.Error("first idle entry upgraded nothing")
		}
		// Stress: inject at 100x the paper's idle BER so every epoch
		// plants real multi-bit work for the decoder.
		if err := m.IdleFor(5*time.Minute, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		now += 1_000_000
		if err := m.ExitIdle(now); err != nil {
			t.Fatal(err)
		}
		for i := range golden {
			now += 10
			got, err := m.Read(uint64(i), now)
			if err != nil {
				t.Fatalf("cycle %d addr %d: %v", cycle, i, err)
			}
			if got != golden[i] {
				t.Fatalf("cycle %d addr %d: data corrupted", cycle, i)
			}
		}
	}
	s := m.Stats()
	if s.InjectedErrors == 0 {
		t.Fatal("no faults injected — test proved nothing")
	}
	if s.CorrectedBits == 0 {
		t.Fatal("no corrections — test proved nothing")
	}
	t.Logf("injected %d errors, corrected %d bits over 4 idle cycles", s.InjectedErrors, s.CorrectedBits)
}

func TestIdleForRequiresIdlePhase(t *testing.T) {
	m := newMemory(t)
	if err := m.IdleFor(time.Minute, time.Second); err == nil {
		t.Error("IdleFor in active phase: want error")
	}
}

func TestScrubClearsAccumulatedErrors(t *testing.T) {
	m := newMemory(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 256; i++ {
		if err := m.Write(uint64(i), randLine(rng), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.EnterIdle(10_000); err != nil {
		t.Fatal(err)
	}
	if err := m.IdleFor(time.Minute, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	corrected, err := m.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if corrected == 0 {
		t.Fatal("scrub found nothing at stress BER")
	}
	// A second scrub immediately after finds a clean array.
	again, err := m.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("second scrub corrected %d bits", again)
	}
}

func TestUncorrectableSurfacesAsError(t *testing.T) {
	m := newMemory(t)
	rng := rand.New(rand.NewSource(5))
	data := randLine(rng)
	if err := m.Write(3, data, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt beyond any code's capability: trash half the line. The
	// weak-encoded line cannot recover from this.
	for b := 0; b < 200; b += 2 {
		m.data[3] = m.data[3].FlipBit(b)
	}
	if _, err := m.Read(3, 2); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("err = %v, want ErrDataLoss", err)
	}
	if m.Stats().Uncorrectable != 1 {
		t.Error("uncorrectable not counted")
	}
}

func TestWeakLinesSurviveJEDECRateIdleInjection(t *testing.T) {
	// Sanity on rates: at the 64 ms-refresh BER (1e-9), a 4096-line
	// memory sees essentially no faults.
	m := newMemory(t)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 256; i++ {
		if err := m.Write(uint64(i), randLine(rng), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.EnterIdle(10_000); err != nil {
		t.Fatal(err)
	}
	if err := m.IdleFor(time.Minute, retention.JEDECPeriod); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().InjectedErrors; got > 2 {
		t.Errorf("injected %d errors at JEDEC-rate BER over 256 lines", got)
	}
}

// TestLongRunIntegritySoak puts a larger functional memory through many
// idle/active cycles at the paper's exact idle-mode BER and verifies:
// zero data loss, and a corrected-error count statistically consistent
// with the analytic binomial expectation that Table I is built on.
func TestLongRunIntegritySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak skipped in -short")
	}
	const (
		lines  = 1 << 14 // 1 MB functional memory
		filled = lines / 2
		cycles = 12
	)
	m, err := New(lines, core.DefaultConfig(lines), 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ExitIdle(0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	golden := make([]line.Line, filled)
	now := uint64(0)
	for i := range golden {
		golden[i] = randLine(rng)
		now += 10
		if err := m.Write(uint64(i), golden[i], now); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < cycles; c++ {
		if _, err := m.EnterIdle(now); err != nil {
			t.Fatal(err)
		}
		if err := m.IdleFor(time.Minute, retention.SlowPeriod); err != nil {
			t.Fatal(err)
		}
		now += 1_000_000
		if err := m.ExitIdle(now); err != nil {
			t.Fatal(err)
		}
		// Touch a random third of the data each active period.
		for i := 0; i < filled/3; i++ {
			addr := uint64(rng.Intn(filled))
			now += 10
			got, err := m.Read(addr, now)
			if err != nil {
				t.Fatalf("cycle %d: %v", c, err)
			}
			if got != golden[addr] {
				t.Fatalf("cycle %d: corruption at %d", c, addr)
			}
		}
	}
	// Final full verification via scrub + reads.
	if _, err := m.EnterIdle(now); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Scrub(); err != nil {
		t.Fatal(err)
	}
	if err := m.ExitIdle(now + 1); err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		now += 10
		got, err := m.Read(uint64(i), now)
		if err != nil || got != golden[i] {
			t.Fatalf("final check at %d: err=%v", i, err)
		}
	}
	s := m.Stats()
	// Expected injections: cycles * filled lines * 576 bits * BER.
	want := float64(cycles) * filled * 576 * retention.SlowBitErrorRate
	got := float64(s.InjectedErrors)
	if got < want*0.6 || got > want*1.5 {
		t.Errorf("injected %v errors, expected ≈ %.0f", got, want)
	}
	if s.Uncorrectable != 0 {
		t.Errorf("uncorrectable events: %d", s.Uncorrectable)
	}
	t.Logf("soak: %d injected (expected ≈%.0f), %d corrected, 0 lost",
		s.InjectedErrors, want, s.CorrectedBits)
}
