package memdata

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/line"
)

// BenchmarkUpgradeSweep measures the batched ECC-Upgrade sweep: every
// line of an 8K-line memory is downgraded during an active phase, then
// EnterIdle decodes each with the weak code and re-encodes it strong
// through the batch codec paths. Setup (active-phase writes) is excluded
// from the timer.
func BenchmarkUpgradeSweep(b *testing.B) {
	const lines = 8192
	cfg := core.DefaultConfig(lines)
	mem, err := New(lines, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	contents := make([]line.Line, lines)
	for i := range contents {
		for w := range contents[i] {
			contents[i][w] = rng.Uint64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := mem.ExitIdle(0); err != nil {
			b.Fatal(err)
		}
		// Writes in active mode land weak (downgrades enabled without
		// SMD), queueing the whole memory for the upgrade sweep.
		for a := uint64(0); a < lines; a++ {
			if err := mem.Write(a, contents[a], 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		tr, err := mem.EnterIdle(0)
		if err != nil {
			b.Fatal(err)
		}
		if tr.LinesUpgraded != lines {
			b.Fatalf("upgraded %d of %d lines", tr.LinesUpgraded, lines)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lines), "ns/line")
}
