package workload

import (
	"math"
	"testing"

	"repro/internal/trace"
)

const memLines = 1 << 24 // 1 GB of 64 B lines

func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 28 {
		t.Fatalf("suite size = %d, want 28 (paper Section IV-B)", len(all))
	}
	if n := len(ByClass(LowMPKI)); n != 8 {
		t.Errorf("Low-MPKI count = %d, want 8", n)
	}
	if n := len(ByClass(MedMPKI)); n != 13 {
		t.Errorf("Med-MPKI count = %d, want 13", n)
	}
	if n := len(ByClass(HighMPKI)); n != 7 {
		t.Errorf("High-MPKI count = %d, want 7", n)
	}
	// Fig. 7 starts with povray and ends with bwaves.
	if all[0].Name != "povray" || all[27].Name != "bwaves" {
		t.Errorf("ordering: first=%s last=%s", all[0].Name, all[27].Name)
	}
	// mcf is excluded (footprint 1.4 GB > 1 GB memory; paper footnote 1).
	if _, err := ByName("mcf"); err == nil {
		t.Error("mcf should not be in the suite")
	}
}

func TestClassAveragesMatchTableIII(t *testing.T) {
	check := func(c Class, wantMPKI, wantFP float64, tolMPKI, tolFP float64) {
		t.Helper()
		ps := ByClass(c)
		var mpki, fp float64
		for _, p := range ps {
			mpki += p.MPKI
			fp += float64(p.FootprintMB)
		}
		mpki /= float64(len(ps))
		fp /= float64(len(ps))
		if math.Abs(mpki-wantMPKI)/wantMPKI > tolMPKI {
			t.Errorf("%v avg MPKI = %.2f, Table III %.1f", c, mpki, wantMPKI)
		}
		if math.Abs(fp-wantFP)/wantFP > tolFP {
			t.Errorf("%v avg footprint = %.1f MB, Table III %.1f", c, fp, wantFP)
		}
	}
	check(LowMPKI, 0.3, 26, 0.15, 0.15)
	check(MedMPKI, 4.7, 96.4, 0.15, 0.15)
	check(HighMPKI, 23.5, 259.1, 0.15, 0.15)
}

func TestAverageFootprintIs128MB(t *testing.T) {
	// Paper Section VI-A: "On average the memory footprint of all the
	// benchmarks is 128MB, which is 8x smaller than the 1GB memory".
	var fp float64
	for _, p := range All() {
		fp += float64(p.FootprintMB)
	}
	fp /= 28
	if fp < 100 || fp > 150 {
		t.Errorf("mean footprint = %.0f MB, paper says ≈128 MB", fp)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("libq")
	if err != nil {
		t.Fatal(err)
	}
	if p.Class() != HighMPKI {
		t.Error("libq should be High-MPKI")
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("want error for unknown name")
	}
	if got := len(Names()); got != 28 {
		t.Errorf("Names() = %d entries", got)
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(0.5) != LowMPKI || ClassOf(5) != MedMPKI || ClassOf(50) != HighMPKI {
		t.Error("ClassOf buckets wrong")
	}
	if ClassOf(1) != MedMPKI || ClassOf(10) != MedMPKI {
		t.Error("boundary buckets wrong")
	}
	for _, c := range []Class{LowMPKI, MedMPKI, HighMPKI} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class string")
	}
}

func TestGeneratorMPKI(t *testing.T) {
	for _, name := range []string{"povray", "gcc", "libq"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(p, memLines, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Stream ~2M instructions and verify the read MPKI.
		src := NewBounded(g, 2_000_000)
		s := trace.Summarize(src)
		got := s.MPKI()
		if math.Abs(got-p.MPKI)/p.MPKI > 0.10 {
			t.Errorf("%s: generated MPKI %.3f, want %.3f", name, got, p.MPKI)
		}
		// Write fraction roughly as configured.
		wf := float64(s.Writes) / float64(s.Reads)
		if math.Abs(wf-p.WriteFrac) > 0.05 {
			t.Errorf("%s: write frac %.2f, want %.2f", name, wf, p.WriteFrac)
		}
	}
}

func TestGeneratorFootprintBounded(t *testing.T) {
	p, err := ByName("libq") // 34 MB footprint, 1 fragment
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, memLines, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]struct{})
	for i := 0; i < 500_000; i++ {
		r, _ := g.Next()
		seen[r.LineAddr] = struct{}{}
		if r.LineAddr >= memLines {
			t.Fatal("address out of memory")
		}
	}
	footMB := float64(len(seen)) * 64 / (1 << 20)
	if footMB > float64(p.FootprintMB)*1.01 {
		t.Errorf("touched %.1f MB > footprint %d MB", footMB, p.FootprintMB)
	}
	// A streaming workload should cover most of its footprint.
	if footMB < float64(p.FootprintMB)*0.5 {
		t.Errorf("touched only %.1f MB of %d MB", footMB, p.FootprintMB)
	}
}

func TestGeneratorSequentialLocality(t *testing.T) {
	// High SeqProb must yield many +1 strides; low SeqProb few.
	stride1 := func(name string) float64 {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(p, memLines, 3)
		if err != nil {
			t.Fatal(err)
		}
		var prev uint64
		hits, n := 0, 0
		for i := 0; i < 100_000; i++ {
			r, _ := g.Next()
			if r.Op != trace.OpRead {
				continue
			}
			if n > 0 && r.LineAddr == prev+1 {
				hits++
			}
			prev = r.LineAddr
			n++
		}
		return float64(hits) / float64(n)
	}
	if s := stride1("libq"); s < 0.85 {
		t.Errorf("libq stride-1 rate %.2f, want > 0.85", s)
	}
	if s := stride1("omnetpp"); s > 0.30 {
		t.Errorf("omnetpp stride-1 rate %.2f, want < 0.30", s)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, err := ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewGenerator(p, memLines, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGenerator(p, memLines, 42)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Take(10_000), b.Take(10_000)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	c, err := NewGenerator(p, memLines, 43)
	if err != nil {
		t.Fatal(err)
	}
	rc := c.Take(10_000)
	same := 0
	for i := range ra {
		if ra[i] == rc[i] {
			same++
		}
	}
	if same == len(ra) {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []Profile{
		{Name: "x", MPKI: 0, BaseCPI: 1, FootprintMB: 10},
		{Name: "x", MPKI: 1, BaseCPI: 0.2, FootprintMB: 10},
		{Name: "x", MPKI: 1, BaseCPI: 1, FootprintMB: 0},
		{Name: "x", MPKI: 1, BaseCPI: 1, FootprintMB: 99999},
	}
	for i, p := range bad {
		if _, err := NewGenerator(p, memLines, 1); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestBounded(t *testing.T) {
	p, err := ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, memLines, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBounded(g, 100_000)
	var instrs uint64
	for {
		r, ok := b.Next()
		if !ok {
			break
		}
		instrs += uint64(r.Gap) + 1
	}
	// Bounded stops after the budget, overshooting by at most one gap.
	if instrs < 100_000 || instrs > 100_000+1_000_000/35 {
		t.Errorf("instructions = %d", instrs)
	}
}

func TestDaemonProfile(t *testing.T) {
	d := Daemon()
	if d.Class() != LowMPKI {
		t.Error("daemon should be Low-MPKI")
	}
	if _, err := NewGenerator(d, memLines, 1); err != nil {
		t.Errorf("daemon profile invalid: %v", err)
	}
}

func TestBurstPhasesPreserveMPKIAndVaryRate(t *testing.T) {
	p, err := ByName("namd") // BurstMult 3.5, 20% duty
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, memLines, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Overall MPKI preserved across full periods.
	src := NewBounded(g, p.BurstPeriodInstr*2)
	s := trace.Summarize(src)
	if got := s.MPKI(); math.Abs(got-p.MPKI)/p.MPKI > 0.12 {
		t.Errorf("bursty MPKI = %.3f, want %.3f", got, p.MPKI)
	}
	// Burst phase has a visibly higher rate than the calm phase.
	g2, err := NewGenerator(p, memLines, 6)
	if err != nil {
		t.Fatal(err)
	}
	var burstInstr, burstReads, calmInstr, calmReads int64
	pos := int64(0)
	for pos < p.BurstPeriodInstr {
		r, _ := g2.Next()
		pos += int64(r.Gap) + 1
		if r.Op != trace.OpRead {
			continue
		}
		if pos < p.BurstLenInstr {
			burstInstr += int64(r.Gap) + 1
			burstReads++
		} else {
			calmInstr += int64(r.Gap) + 1
			calmReads++
		}
	}
	burstRate := float64(burstReads) / float64(burstInstr)
	calmRate := float64(calmReads) / float64(calmInstr)
	if burstRate < 3*calmRate {
		t.Errorf("burst rate %.5f not >> calm rate %.5f", burstRate, calmRate)
	}
}

func TestMobileProfiles(t *testing.T) {
	mobile := Mobile()
	if len(mobile) != 4 {
		t.Fatalf("mobile profiles = %d", len(mobile))
	}
	for _, p := range mobile {
		if _, err := NewGenerator(p, memLines, 1); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		// Mobile names never shadow the SPEC suite.
		if _, err := ByName(p.Name); err == nil {
			t.Errorf("%s collides with the SPEC suite", p.Name)
		}
	}
	if _, err := MobileByName("videoplay"); err != nil {
		t.Error(err)
	}
	if _, err := MobileByName("nope"); err == nil {
		t.Error("want error")
	}
	// videoplay streams: stride-1 dominates.
	p, err := MobileByName("videoplay")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, memLines, 2)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	hits, n := 0, 0
	for i := 0; i < 50_000; i++ {
		r, _ := g.Next()
		if r.Op != trace.OpRead {
			continue
		}
		if n > 0 && r.LineAddr == prev+1 {
			hits++
		}
		prev = r.LineAddr
		n++
	}
	if rate := float64(hits) / float64(n); rate < 0.85 {
		t.Errorf("videoplay stride-1 rate = %.2f", rate)
	}
}

// TestProfileEstimationRoundTrip: generate a trace from a known profile,
// estimate a profile back from it, and verify the key knobs survive.
func TestProfileEstimationRoundTrip(t *testing.T) {
	orig, err := ByName("zeusmp")
	if err != nil {
		t.Fatal(err)
	}
	orig = orig.Scaled(200)
	g, err := NewGenerator(orig, memLines, 7)
	if err != nil {
		t.Fatal(err)
	}
	summary := Summarize(NewBounded(g, 3_000_000))
	est := EstimateProfile("zeusmp-est", summary, orig.BaseCPI)

	if math.Abs(est.MPKI-orig.MPKI)/orig.MPKI > 0.10 {
		t.Errorf("estimated MPKI %.2f vs %.2f", est.MPKI, orig.MPKI)
	}
	if math.Abs(est.WriteFrac-orig.WriteFrac) > 0.05 {
		t.Errorf("estimated write frac %.2f vs %.2f", est.WriteFrac, orig.WriteFrac)
	}
	// Stride-1 rate approximates SeqProb for a streaming profile.
	if math.Abs(est.SeqProb-orig.SeqProb) > 0.12 {
		t.Errorf("estimated seq %.2f vs %.2f", est.SeqProb, orig.SeqProb)
	}
	// The estimated profile is itself generatable.
	if _, err := NewGenerator(est, memLines, 1); err != nil {
		t.Fatalf("estimated profile not generatable: %v", err)
	}
	// Degenerate inputs are clamped, not rejected.
	junk := EstimateProfile("junk", TraceSummary{}, 0)
	if _, err := NewGenerator(junk, memLines, 1); err != nil {
		t.Errorf("clamped junk profile not generatable: %v", err)
	}
}
