// Package workload provides the simulator's 28 synthetic benchmark
// profiles and the generator that turns a profile into a memory-access
// stream. The profiles carry the names and MPKI classes of the SPEC2006
// workloads the paper evaluates (Fig. 7's ordering); their MPKI, IPC and
// footprint parameters are calibrated so the three class averages match
// the paper's Table III (Low: MPKI 0.3 / IPC 1.51 / 26 MB; Med: 4.7 /
// 0.89 / 96 MB; High: 23.5 / 0.36 / 259 MB). The paper's actual traces
// are not distributable; DESIGN.md records this substitution.
package workload

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ErrUnknownBenchmark reports a name outside the 28-benchmark suite.
var ErrUnknownBenchmark = errors.New("workload: unknown benchmark")

// Class buckets benchmarks by memory intensity (paper Section IV-B).
type Class int

// MPKI classes.
const (
	// LowMPKI is MPKI < 1.
	LowMPKI Class = iota + 1
	// MedMPKI is 1 <= MPKI <= 10.
	MedMPKI
	// HighMPKI is MPKI > 10.
	HighMPKI
)

// String renders the class as in the paper's figures.
func (c Class) String() string {
	switch c {
	case LowMPKI:
		return "Low-MPKI"
	case MedMPKI:
		return "Med-MPKI"
	case HighMPKI:
		return "High-MPKI"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassOf buckets an MPKI value.
func ClassOf(mpki float64) Class {
	switch {
	case mpki < 1:
		return LowMPKI
	case mpki <= 10:
		return MedMPKI
	default:
		return HighMPKI
	}
}

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	// Name is the SPEC2006 benchmark name.
	Name string
	// MPKI is the target LLC read-miss rate per kilo-instruction.
	MPKI float64
	// BaseCPI is the CPI of non-memory work on the 2-wide in-order core
	// (>= 0.5); memory stalls add on top.
	BaseCPI float64
	// FootprintMB is the touched memory in MB (Table III's metric:
	// unique 4 KB pages).
	FootprintMB int
	// SeqProb is the probability that an access continues a sequential
	// run (row-buffer locality knob).
	SeqProb float64
	// WriteFrac is the ratio of writebacks to read misses.
	WriteFrac float64
	// Fragments is the number of disjoint address regions the footprint
	// is scattered across (drives MDT occupancy beyond raw footprint).
	Fragments int
	// BurstMult, when > 1, gives the workload program phases: for
	// BurstLenInstr out of every BurstPeriodInstr instructions the miss
	// rate is BurstMult times higher, compensated in between so the
	// average MPKI is unchanged. SPEC programs are phasey; this is what
	// lets a low-average-MPKC benchmark (namd, gobmk) trip the SMD
	// threshold in some windows (paper Fig. 14) while povray-class
	// benchmarks never do.
	BurstMult                       float64
	BurstLenInstr, BurstPeriodInstr int64
	// FootprintLinesOverride, when nonzero, supersedes FootprintMB as
	// the working-set size in cache lines. Scaled sets it so that
	// sub-megabyte scaled footprints keep the exact cold-line to
	// total-miss ratio of the full-scale run.
	FootprintLinesOverride uint64
}

// FootprintLines returns the working-set size in 64 B cache lines.
func (p Profile) FootprintLines() uint64 {
	if p.FootprintLinesOverride != 0 {
		return p.FootprintLinesOverride
	}
	return uint64(p.FootprintMB) << 20 / 64
}

// Class returns the profile's MPKI class.
func (p Profile) Class() Class { return ClassOf(p.MPKI) }

// Scaled shrinks the profile's footprint by the given divisor (min 1 MB),
// for reduced-scale runs: when the harness simulates 4e9/divisor
// instructions instead of the paper's 4 billion, shrinking the footprint
// by the same factor preserves the ratio of cold-transient to
// steady-state accesses that MECC's first-touch downgrade cost depends
// on. MPKI, locality and CPI are scale-invariant and stay unchanged.
func (p Profile) Scaled(divisor int) Profile {
	if divisor <= 1 {
		return p
	}
	lines := p.FootprintLines() / uint64(divisor)
	if lines < 64 {
		lines = 64
	}
	p.FootprintLinesOverride = lines
	scaledMB := int(lines * 64 >> 20)
	if scaledMB < 1 {
		scaledMB = 1
	}
	if p.Fragments > scaledMB {
		p.Fragments = scaledMB
	}
	p.BurstLenInstr /= int64(divisor)
	p.BurstPeriodInstr /= int64(divisor)
	return p
}

// profiles is ordered exactly as the paper's Fig. 7 x-axis.
var profiles = []Profile{
	// Low-MPKI (8): compute-bound.
	{Name: "povray", MPKI: 0.05, BaseCPI: 0.52, FootprintMB: 5, SeqProb: 0.50, WriteFrac: 0.25, Fragments: 2},
	{Name: "tonto", MPKI: 0.15, BaseCPI: 0.57, FootprintMB: 30, SeqProb: 0.50, WriteFrac: 0.30, Fragments: 3},
	{Name: "wrf", MPKI: 0.35, BaseCPI: 0.70, FootprintMB: 90, SeqProb: 0.70, WriteFrac: 0.35, Fragments: 4},
	{Name: "gamess", MPKI: 0.05, BaseCPI: 0.53, FootprintMB: 6, SeqProb: 0.50, WriteFrac: 0.25, Fragments: 2},
	{Name: "hmmer", MPKI: 0.30, BaseCPI: 0.59, FootprintMB: 12, SeqProb: 0.60, WriteFrac: 0.30, Fragments: 2},
	{Name: "sjeng", MPKI: 0.40, BaseCPI: 0.91, FootprintMB: 40, SeqProb: 0.20, WriteFrac: 0.30, Fragments: 3},
	{Name: "h264ref", MPKI: 0.55, BaseCPI: 0.63, FootprintMB: 15, SeqProb: 0.60, WriteFrac: 0.30, Fragments: 2},
	{Name: "namd", MPKI: 0.55, BaseCPI: 0.58, FootprintMB: 10, SeqProb: 0.60, WriteFrac: 0.25, Fragments: 2,
		BurstMult: 3.5, BurstLenInstr: 800_000_000, BurstPeriodInstr: 4_000_000_000},
	// Med-MPKI (13).
	{Name: "gobmk", MPKI: 1.2, BaseCPI: 0.75, FootprintMB: 28, SeqProb: 0.35, WriteFrac: 0.30, Fragments: 3,
		BurstMult: 2.5, BurstLenInstr: 800_000_000, BurstPeriodInstr: 4_000_000_000},
	{Name: "gromacs", MPKI: 1.1, BaseCPI: 0.66, FootprintMB: 20, SeqProb: 0.55, WriteFrac: 0.30, Fragments: 2,
		BurstMult: 2.5, BurstLenInstr: 800_000_000, BurstPeriodInstr: 4_000_000_000},
	{Name: "perl", MPKI: 1.6, BaseCPI: 0.67, FootprintMB: 50, SeqProb: 0.35, WriteFrac: 0.35, Fragments: 4,
		BurstMult: 2, BurstLenInstr: 800_000_000, BurstPeriodInstr: 4_000_000_000},
	{Name: "astar", MPKI: 2.6, BaseCPI: 0.75, FootprintMB: 60, SeqProb: 0.20, WriteFrac: 0.30, Fragments: 4},
	{Name: "bzip2", MPKI: 3.6, BaseCPI: 0.69, FootprintMB: 100, SeqProb: 0.55, WriteFrac: 0.40, Fragments: 3},
	{Name: "dealII", MPKI: 2.9, BaseCPI: 0.66, FootprintMB: 80, SeqProb: 0.50, WriteFrac: 0.30, Fragments: 4},
	{Name: "soplex", MPKI: 8.8, BaseCPI: 0.94, FootprintMB: 250, SeqProb: 0.50, WriteFrac: 0.25, Fragments: 6},
	{Name: "cactus", MPKI: 5.6, BaseCPI: 0.77, FootprintMB: 150, SeqProb: 0.60, WriteFrac: 0.40, Fragments: 4},
	{Name: "calculix", MPKI: 1.9, BaseCPI: 0.61, FootprintMB: 55, SeqProb: 0.60, WriteFrac: 0.30, Fragments: 3},
	{Name: "gcc", MPKI: 6.2, BaseCPI: 0.81, FootprintMB: 140, SeqProb: 0.40, WriteFrac: 0.40, Fragments: 8},
	{Name: "zeusmp", MPKI: 5.1, BaseCPI: 0.74, FootprintMB: 120, SeqProb: 0.65, WriteFrac: 0.35, Fragments: 4},
	{Name: "omnetpp", MPKI: 9.8, BaseCPI: 0.85, FootprintMB: 140, SeqProb: 0.15, WriteFrac: 0.35, Fragments: 6},
	{Name: "sphinx", MPKI: 8.7, BaseCPI: 0.95, FootprintMB: 60, SeqProb: 0.60, WriteFrac: 0.15, Fragments: 3},
	// High-MPKI (7): memory-bound.
	{Name: "milc", MPKI: 18.0, BaseCPI: 0.58, FootprintMB: 380, SeqProb: 0.75, WriteFrac: 0.35, Fragments: 5},
	{Name: "xalanc", MPKI: 13.0, BaseCPI: 0.63, FootprintMB: 190, SeqProb: 0.25, WriteFrac: 0.30, Fragments: 8},
	{Name: "leslie", MPKI: 16.0, BaseCPI: 0.70, FootprintMB: 80, SeqProb: 0.80, WriteFrac: 0.40, Fragments: 3},
	{Name: "libq", MPKI: 26.0, BaseCPI: 0.52, FootprintMB: 34, SeqProb: 0.95, WriteFrac: 0.30, Fragments: 1},
	{Name: "Gems", MPKI: 27.0, BaseCPI: 0.50, FootprintMB: 500, SeqProb: 0.70, WriteFrac: 0.40, Fragments: 6},
	{Name: "lbm", MPKI: 35.0, BaseCPI: 0.50, FootprintMB: 400, SeqProb: 0.90, WriteFrac: 0.45, Fragments: 2},
	{Name: "bwaves", MPKI: 28.0, BaseCPI: 0.50, FootprintMB: 230, SeqProb: 0.85, WriteFrac: 0.35, Fragments: 3},
}

// All returns the 28 profiles in the paper's Fig. 7 order. The slice is a
// copy; callers may modify it.
func All() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ByName looks up a profile.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("%w: %q", ErrUnknownBenchmark, name)
}

// Names returns the benchmark names in Fig. 7 order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ByClass returns the profiles of one MPKI class, preserving order.
func ByClass(c Class) []Profile {
	var out []Profile
	for _, p := range profiles {
		if p.Class() == c {
			out = append(out, p)
		}
	}
	return out
}

// Mobile returns four synthetic mobile-scenario profiles beyond the
// SPEC suite — the workload flavors the paper's introduction motivates
// (app launch, video, browsing, gaming). They are not part of the
// 28-benchmark evaluation; examples and the idlephone scenario use them.
func Mobile() []Profile {
	return []Profile{
		// App launch: bursty, touches a lot of memory once.
		{Name: "appstart", MPKI: 12, BaseCPI: 0.7, FootprintMB: 180, SeqProb: 0.55, WriteFrac: 0.40, Fragments: 10},
		// Video playback: streaming frames, modest CPU.
		{Name: "videoplay", MPKI: 8, BaseCPI: 0.6, FootprintMB: 96, SeqProb: 0.92, WriteFrac: 0.45, Fragments: 2},
		// Web browsing: pointer-heavy with layout bursts.
		{Name: "webbrowse", MPKI: 5, BaseCPI: 0.8, FootprintMB: 120, SeqProb: 0.30, WriteFrac: 0.35, Fragments: 8,
			BurstMult: 3, BurstLenInstr: 400_000_000, BurstPeriodInstr: 2_000_000_000},
		// Game rendering: memory-bound streaming over large assets.
		{Name: "gamerender", MPKI: 20, BaseCPI: 0.55, FootprintMB: 320, SeqProb: 0.80, WriteFrac: 0.35, Fragments: 4},
	}
}

// MobileByName looks up a mobile profile.
func MobileByName(name string) (Profile, error) {
	for _, p := range Mobile() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("%w: %q", ErrUnknownBenchmark, name)
}

// EstimateProfile reverse-engineers a Profile from trace statistics and
// a measured stride-1 rate: the round trip lets externally captured
// traces (cmd/tracegen output, or real miss traces converted to the text
// format) be re-synthesized at other scales. BaseCPI cannot be observed
// from a memory trace and must be supplied.
func EstimateProfile(name string, s TraceSummary, baseCPI float64) Profile {
	p := Profile{
		Name:        name,
		MPKI:        s.MPKI,
		BaseCPI:     baseCPI,
		FootprintMB: int(s.FootprintBytes >> 20),
		SeqProb:     s.Stride1Rate,
		WriteFrac:   s.WriteFrac,
		Fragments:   1,
	}
	if p.FootprintMB < 1 {
		p.FootprintMB = 1
		p.FootprintLinesOverride = s.FootprintBytes / 64
		if p.FootprintLinesOverride < 64 {
			p.FootprintLinesOverride = 64
		}
	}
	if p.MPKI <= 0 {
		p.MPKI = 0.01
	}
	if p.BaseCPI < 0.5 {
		p.BaseCPI = 0.5
	}
	return p
}

// TraceSummary is the input to EstimateProfile, computed by Summarize.
type TraceSummary struct {
	// MPKI is read misses per kilo-instruction.
	MPKI float64
	// FootprintBytes is unique lines x 64.
	FootprintBytes uint64
	// WriteFrac is writebacks per read.
	WriteFrac float64
	// Stride1Rate is the fraction of reads at +1 line from their
	// predecessor.
	Stride1Rate float64
}

// Summarize computes a TraceSummary from a record stream.
func Summarize(src trace.Source) TraceSummary {
	var (
		out         TraceSummary
		instrs      uint64
		reads, wrs  uint64
		stride1     uint64
		prev        uint64
		havePrev    bool
		uniqueLines = make(map[uint64]struct{})
	)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		instrs += uint64(rec.Gap) + 1
		uniqueLines[rec.LineAddr] = struct{}{}
		if rec.Op == trace.OpWrite {
			wrs++
			continue
		}
		reads++
		if havePrev && rec.LineAddr == prev+1 {
			stride1++
		}
		prev = rec.LineAddr
		havePrev = true
	}
	if instrs > 0 {
		out.MPKI = float64(reads) / float64(instrs) * 1000
	}
	out.FootprintBytes = uint64(len(uniqueLines)) * 64
	if reads > 0 {
		out.WriteFrac = float64(wrs) / float64(reads)
		out.Stride1Rate = float64(stride1) / float64(reads)
	}
	return out
}

// Daemon returns a synthetic profile for the short periodic background
// activity of idle mode (bluetooth checks, network interrupts — paper
// Section VI-B): tiny footprint, low memory traffic.
func Daemon() Profile {
	return Profile{
		Name:        "daemon",
		MPKI:        0.4,
		BaseCPI:     0.8,
		FootprintMB: 2,
		SeqProb:     0.4,
		WriteFrac:   0.3,
		Fragments:   1,
	}
}
