package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/trace"
)

// Generator synthesizes a memory-access stream from a profile: geometric
// instruction gaps targeting the profile's MPKI, sequential runs with
// probability SeqProb (row-buffer locality), uniform jumps within a
// fragmented footprint otherwise, and writebacks trailing reads at
// WriteFrac. It implements trace.Source and is deterministic for a given
// seed. Not safe for concurrent use.
type Generator struct {
	prof       Profile
	rng        *rand.Rand
	totalLines uint64 // memory size in lines
	// Footprint layout: Fragments regions, each regionLines long, with
	// deterministic pseudo-random bases.
	regionBases []uint64
	regionLines uint64
	// meanGap is the expected instruction gap per read.
	meanGap float64
	// Phase behaviour: burstGapMult / calmGapMult scale the gap mean
	// inside and outside burst phases so the average MPKI is preserved.
	burstGapMult, calmGapMult float64
	instrEmitted              int64
	// Current position for sequential runs.
	cur       uint64
	pendingWB []uint64
}

// NewGenerator builds a generator over a memory of totalLines cache
// lines.
func NewGenerator(prof Profile, totalLines uint64, seed int64) (*Generator, error) {
	if prof.MPKI <= 0 || prof.BaseCPI < 0.5 || prof.FootprintMB <= 0 {
		return nil, fmt.Errorf("workload: invalid profile %+v", prof)
	}
	if prof.Fragments <= 0 {
		prof.Fragments = 1
	}
	footLines := prof.FootprintLines()
	if footLines > totalLines {
		return nil, fmt.Errorf("workload: footprint %d MB exceeds memory", prof.FootprintMB)
	}
	g := &Generator{
		prof:         prof,
		rng:          rand.New(rand.NewSource(seed)),
		totalLines:   totalLines,
		regionLines:  footLines / uint64(prof.Fragments),
		meanGap:      1000/prof.MPKI - 1,
		burstGapMult: 1,
		calmGapMult:  1,
	}
	if prof.BurstMult > 1 && prof.BurstPeriodInstr > 0 && prof.BurstLenInstr > 0 &&
		prof.BurstLenInstr < prof.BurstPeriodInstr {
		duty := float64(prof.BurstLenInstr) / float64(prof.BurstPeriodInstr)
		if calm := (1 - duty*prof.BurstMult) / (1 - duty); calm > 0 {
			// Gap mean scales inversely with miss rate.
			g.burstGapMult = 1 / prof.BurstMult
			g.calmGapMult = 1 / calm
		}
	}
	if g.regionLines == 0 {
		g.regionLines = 1
	}
	// Scatter fragments across the address space deterministically,
	// non-overlapping by construction: split memory into Fragments
	// equal slots and place one region at a random offset inside each.
	slot := totalLines / uint64(prof.Fragments)
	g.regionBases = make([]uint64, prof.Fragments)
	for i := range g.regionBases {
		maxOff := int64(slot - g.regionLines)
		var off int64
		if maxOff > 0 {
			off = g.rng.Int63n(maxOff)
		}
		g.regionBases[i] = uint64(i)*slot + uint64(off)
	}
	g.cur = g.randomLine()
	return g, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// randomLine picks a uniform line within the footprint.
func (g *Generator) randomLine() uint64 {
	region := g.rng.Intn(len(g.regionBases))
	return g.regionBases[region] + uint64(g.rng.Int63n(int64(g.regionLines)))
}

// geometricGap draws an instruction gap with the configured mean, scaled
// by the current phase's multiplier.
func (g *Generator) geometricGap() uint32 {
	if g.meanGap <= 0 {
		return 0
	}
	mean := g.meanGap * g.phaseGapMult()
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	gap := -math.Log(u) * mean
	if gap > math.MaxUint32 {
		gap = math.MaxUint32
	}
	return uint32(gap)
}

// phaseGapMult returns the gap multiplier for the current program phase.
func (g *Generator) phaseGapMult() float64 {
	if g.prof.BurstPeriodInstr <= 0 {
		return 1
	}
	if g.instrEmitted%g.prof.BurstPeriodInstr < g.prof.BurstLenInstr {
		return g.burstGapMult
	}
	return g.calmGapMult
}

// Next implements trace.Source; the stream is unbounded, so callers bound
// it by instruction count.
func (g *Generator) Next() (trace.Record, bool) {
	// Emit a pending writeback (gap 0: writebacks accompany the miss
	// that evicted them).
	if n := len(g.pendingWB); n > 0 {
		addr := g.pendingWB[n-1]
		g.pendingWB = g.pendingWB[:n-1]
		return trace.Record{Op: trace.OpWrite, LineAddr: addr}, true
	}
	// Advance the access pattern.
	if g.rng.Float64() < g.prof.SeqProb {
		g.cur++
		// Wrap within the current region.
		for i, base := range g.regionBases {
			if g.cur >= base && g.cur < base+g.regionLines {
				break
			}
			if i == len(g.regionBases)-1 {
				g.cur = g.randomLine()
			}
		}
	} else {
		g.cur = g.randomLine()
	}
	// Queue a writeback with probability WriteFrac: model a dirty
	// eviction from elsewhere in the footprint.
	if g.rng.Float64() < g.prof.WriteFrac {
		g.pendingWB = append(g.pendingWB, g.randomLine())
	}
	gap := g.geometricGap()
	g.instrEmitted += int64(gap) + 1
	return trace.Record{
		Gap:      gap,
		Op:       trace.OpRead,
		LineAddr: g.cur,
	}, true
}

// Take materializes the next n records into a slice.
func (g *Generator) Take(n int) []trace.Record {
	out := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// Bounded wraps a source and stops after the given instruction budget.
type Bounded struct {
	src       trace.Source
	remaining int64
}

// NewBounded bounds src to at most instructions retired instructions.
func NewBounded(src trace.Source, instructions int64) *Bounded {
	return &Bounded{src: src, remaining: instructions}
}

// Next implements trace.Source.
func (b *Bounded) Next() (trace.Record, bool) {
	if b.remaining <= 0 {
		return trace.Record{}, false
	}
	r, ok := b.src.Next()
	if !ok {
		return trace.Record{}, false
	}
	b.remaining -= int64(r.Gap) + 1
	return r, true
}
