package reliability

import (
	"math"
	"math/big"
	"testing"
)

// within checks agreement to a relative tolerance.
func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

func TestTableIMatchesPaper(t *testing.T) {
	// Paper Table I, BER 10^-4.5, 64 B lines (576 stored bits), 1 GB.
	rows, err := TableI(DefaultBER, DefaultLineBits, DefaultMemoryLines, 6)
	if err != nil {
		t.Fatal(err)
	}
	wantLine := []float64{1.8e-2, 1.6e-4, 9.8e-7, 4.5e-9, 1.6e-11, 4.9e-14, 1.2e-16}
	wantSys := []float64{1.0, 1.0, 1.0, 7.2e-2, 2.7e-4, 8.1e-7, 1.8e-9}
	for i, row := range rows {
		if !within(row.LineFailure, wantLine[i], 0.10) {
			t.Errorf("ECC-%d line failure = %.3g, paper %.3g", i, row.LineFailure, wantLine[i])
		}
		// System failure saturates at 1.0 for weak codes; allow 15% on
		// the small values (the paper's own rounding is 2 significant
		// digits).
		if wantSys[i] == 1.0 {
			if row.SystemFailure < 0.99 {
				t.Errorf("ECC-%d system failure = %.3g, want ≈ 1", i, row.SystemFailure)
			}
		} else if !within(row.SystemFailure, wantSys[i], 0.20) {
			t.Errorf("ECC-%d system failure = %.3g, paper %.3g", i, row.SystemFailure, wantSys[i])
		}
	}
}

func TestRequiredStrengthIsECC6(t *testing.T) {
	// The paper: ECC-5 meets the 1e-6 target; +1 level of soft-error
	// margin gives ECC-6.
	got, err := RequiredStrength(DefaultBER, DefaultLineBits, DefaultMemoryLines, TargetSystemFailure, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("RequiredStrength = ECC-%d, want ECC-6", got)
	}
	raw, err := RequiredStrength(DefaultBER, DefaultLineBits, DefaultMemoryLines, TargetSystemFailure, 0)
	if err != nil {
		t.Fatal(err)
	}
	if raw != 5 {
		t.Errorf("raw required strength = ECC-%d, want ECC-5", raw)
	}
}

// TestLineFailureAgainstBigFloat cross-checks the log-space computation
// against exact big.Float arithmetic for a few (n, t, p) points.
func TestLineFailureAgainstBigFloat(t *testing.T) {
	cases := []struct {
		n, t int
		p    float64
	}{
		{576, 0, 3.1622776601683795e-05},
		{576, 2, 3.1622776601683795e-05},
		{576, 6, 3.1622776601683795e-05},
		{576, 1, 1e-6},
		{72, 1, 1e-4},
	}
	for _, c := range cases {
		got, err := LineFailure(c.n, c.t, c.p)
		if err != nil {
			t.Fatal(err)
		}
		want := bigTail(c.n, c.t, c.p)
		if !within(got, want, 1e-6) {
			t.Errorf("LineFailure(%d,%d,%g) = %g, exact %g", c.n, c.t, c.p, got, want)
		}
	}
}

// bigTail computes P(X > t) for X ~ Binomial(n, p) with 200-bit floats by
// summing the complementary CDF head and subtracting from 1 when that is
// better conditioned, otherwise summing the tail directly.
func bigTail(n, tcap int, p float64) float64 {
	prec := uint(200)
	bp := new(big.Float).SetPrec(prec).SetFloat64(p)
	bq := new(big.Float).SetPrec(prec).SetFloat64(1 - p)
	sum := new(big.Float).SetPrec(prec)
	// Tail sum k=tcap+1..min(n, tcap+80).
	kMax := tcap + 80
	if kMax > n {
		kMax = n
	}
	for k := tcap + 1; k <= kMax; k++ {
		term := new(big.Float).SetPrec(prec).SetInt(choose(n, k))
		for i := 0; i < k; i++ {
			term.Mul(term, bp)
		}
		for i := 0; i < n-k; i++ {
			term.Mul(term, bq)
		}
		sum.Add(sum, term)
	}
	out, _ := sum.Float64()
	return out
}

func choose(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

func TestSystemFailureStability(t *testing.T) {
	// Tiny per-line probability: must not round to zero.
	sf, err := SystemFailure(1e-16, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if !within(sf, 1e-16*float64(1<<24), 1e-6) {
		t.Errorf("SystemFailure(1e-16) = %g", sf)
	}
	// Saturating case.
	sf, err = SystemFailure(1e-2, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if sf < 0.999999 {
		t.Errorf("SystemFailure(1e-2) = %g, want ≈ 1", sf)
	}
	if sf, err = SystemFailure(0, 10); err != nil || sf != 0 {
		t.Error("SystemFailure(0) should be 0")
	}
	if sf, err = SystemFailure(1, 10); err != nil || sf != 1 {
		t.Error("SystemFailure(1) should be 1")
	}
}

func TestValidation(t *testing.T) {
	if _, err := LineFailure(0, 1, 0.5); err == nil {
		t.Error("LineFailure(n=0): want error")
	}
	if _, err := LineFailure(10, -1, 0.5); err == nil {
		t.Error("LineFailure(t<0): want error")
	}
	if _, err := LineFailure(10, 1, 0); err == nil {
		t.Error("LineFailure(p=0): want error")
	}
	if _, err := LineFailure(10, 1, 1); err == nil {
		t.Error("LineFailure(p=1): want error")
	}
	if _, err := SystemFailure(0.5, 0); err == nil {
		t.Error("SystemFailure(n=0): want error")
	}
	if _, err := SystemFailure(1.5, 10); err == nil {
		t.Error("SystemFailure(p>1): want error")
	}
	if got, err := LineFailure(4, 10, 0.5); err != nil || got != 0 {
		t.Error("t >= n should fail with probability 0")
	}
}

func TestLineFailureMonotonicInT(t *testing.T) {
	prev := 1.1
	for tc := 0; tc <= 8; tc++ {
		lf, err := LineFailure(DefaultLineBits, tc, DefaultBER)
		if err != nil {
			t.Fatal(err)
		}
		if lf >= prev {
			t.Fatalf("line failure not decreasing at t=%d (%g >= %g)", tc, lf, prev)
		}
		prev = lf
	}
}

func TestExpectedFailedBits(t *testing.T) {
	// Paper: ~32K failed bits per 1 Gb at BER 10^-4.5.
	got := ExpectedFailedBits(DefaultBER, float64(uint64(1)<<30))
	if got < 30e3 || got > 40e3 {
		t.Errorf("expected failed bits per 1Gb = %.0f, want ≈ 32K", got)
	}
	// ~256K bits per 1 GB (8 Gb).
	got = ExpectedFailedBits(DefaultBER, float64(uint64(8)<<30))
	if got < 250e3 || got > 290e3 {
		t.Errorf("expected failed bits per 1GB = %.0f, want ≈ 256K", got)
	}
}

func TestScrubAnalysis(t *testing.T) {
	rows, err := ScrubAnalysis(DefaultBER, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 32 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Effective BER grows ≈ linearly; system failure monotonically.
	if !within(rows[0].EffectiveBER, DefaultBER, 1e-9) {
		t.Errorf("k=1 BER = %g", rows[0].EffectiveBER)
	}
	if !within(rows[15].EffectiveBER, 16*DefaultBER, 0.01) {
		t.Errorf("k=16 BER = %g, want ≈ 16p", rows[15].EffectiveBER)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SystemFailure < rows[i-1].SystemFailure {
			t.Fatal("system failure not monotone")
		}
	}
	// With per-wake-up scrubbing (k=1) the 1e-6 target holds easily;
	// letting errors pile up for 32 idle periods blows the budget.
	if rows[0].SystemFailure > TargetSystemFailure {
		t.Errorf("k=1 failure = %g exceeds target", rows[0].SystemFailure)
	}
	if rows[31].SystemFailure < TargetSystemFailure {
		t.Errorf("k=32 failure = %g should exceed target", rows[31].SystemFailure)
	}
	if _, err := ScrubAnalysis(DefaultBER, 0); err == nil {
		t.Error("zero periods: want error")
	}
	if _, err := ScrubAnalysis(0, 5); err == nil {
		t.Error("zero ber: want error")
	}
}
