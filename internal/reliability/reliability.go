// Package reliability computes the analytic failure probabilities behind
// the paper's Table I: the chance that a 64-byte line (576 stored bits)
// sees more errors than its ECC can correct, and the chance that at least
// one line of a memory fails. Errors are modelled as uniform and
// independent, the assumption the paper adopts from the retention
// literature. All computation is done in log space so that probabilities
// down to 1e-300 remain exact enough to rank ECC strengths.
package reliability

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned on invalid arguments.
var (
	ErrBadProbability = errors.New("reliability: probability must be in (0,1)")
	ErrBadCount       = errors.New("reliability: counts must be positive")
)

// Paper defaults (Section II-B/C): 576 stored bits per line (512 data +
// 64 spare), 2^24 lines in the 1 GB memory.
const (
	// DefaultLineBits is the protected width of one line, ECC included.
	DefaultLineBits = 576
	// DefaultMemoryLines is the number of 64 B lines in 1 GB.
	DefaultMemoryLines = 1 << 24
	// DefaultBER is the paper's raw bit error rate at a 1 s refresh
	// period, 10^-4.5.
	DefaultBER = 3.1622776601683795e-05
	// TargetSystemFailure is the paper's acceptance bar: fewer than one
	// affected system per million.
	TargetSystemFailure = 1e-6
)

// logChoose returns ln C(n,k).
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// logSumExp accumulates probabilities given as logs without underflow.
func logSumExp(logs []float64) float64 {
	if len(logs) == 0 {
		return math.Inf(-1)
	}
	m := logs[0]
	for _, l := range logs[1:] {
		if l > m {
			m = l
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, l := range logs {
		s += math.Exp(l - m)
	}
	return m + math.Log(s)
}

// LineFailure returns P(more than t errors among nBits bits), each bit
// failing independently with probability ber — the probability that an
// ECC-t line is uncorrectable.
func LineFailure(nBits, t int, ber float64) (float64, error) {
	if nBits <= 0 || t < 0 {
		return 0, fmt.Errorf("%w: nBits=%d t=%d", ErrBadCount, nBits, t)
	}
	if ber <= 0 || ber >= 1 {
		return 0, fmt.Errorf("%w: %g", ErrBadProbability, ber)
	}
	if t >= nBits {
		return 0, nil
	}
	lp := math.Log(ber)
	lq := math.Log1p(-ber)
	// Tail sum from k=t+1. Terms fall off geometrically by roughly
	// nBits*ber per step; 64 terms bound the truncation error far below
	// float precision for every regime the simulator explores.
	kMax := t + 64
	if kMax > nBits {
		kMax = nBits
	}
	logs := make([]float64, 0, kMax-t)
	for k := t + 1; k <= kMax; k++ {
		logs = append(logs, logChoose(nBits, k)+float64(k)*lp+float64(nBits-k)*lq)
	}
	return math.Exp(logSumExp(logs)), nil
}

// SystemFailure returns P(at least one of nLines lines fails), given the
// per-line failure probability.
func SystemFailure(lineFailure float64, nLines int) (float64, error) {
	if nLines <= 0 {
		return 0, fmt.Errorf("%w: nLines=%d", ErrBadCount, nLines)
	}
	if lineFailure < 0 || lineFailure > 1 {
		return 0, fmt.Errorf("%w: %g", ErrBadProbability, lineFailure)
	}
	if lineFailure == 0 {
		return 0, nil
	}
	if lineFailure == 1 {
		return 1, nil
	}
	// 1 - (1-p)^n computed stably.
	return -math.Expm1(float64(nLines) * math.Log1p(-lineFailure)), nil
}

// Row is one line of Table I.
type Row struct {
	// T is the ECC correction strength (0 = no ECC).
	T int
	// LineFailure is the per-line uncorrectable probability.
	LineFailure float64
	// SystemFailure is the probability for the whole memory.
	SystemFailure float64
}

// TableI reproduces the paper's Table I for the given BER, line width and
// memory size, for ECC strengths 0..maxT.
func TableI(ber float64, lineBits, nLines, maxT int) ([]Row, error) {
	rows := make([]Row, 0, maxT+1)
	for t := 0; t <= maxT; t++ {
		lf, err := LineFailure(lineBits, t, ber)
		if err != nil {
			return nil, err
		}
		sf, err := SystemFailure(lf, nLines)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{T: t, LineFailure: lf, SystemFailure: sf})
	}
	return rows, nil
}

// RequiredStrength returns the smallest ECC strength whose system failure
// probability meets the target, plus extraSoftError levels of margin (the
// paper adds one level for soft errors and VRT episodes, arriving at
// ECC-6 = required ECC-5 + 1).
func RequiredStrength(ber float64, lineBits, nLines int, target float64, extraSoftError int) (int, error) {
	for t := 0; t <= lineBits; t++ {
		lf, err := LineFailure(lineBits, t, ber)
		if err != nil {
			return 0, err
		}
		sf, err := SystemFailure(lf, nLines)
		if err != nil {
			return 0, err
		}
		if sf < target {
			return t + extraSoftError, nil
		}
	}
	return 0, fmt.Errorf("reliability: no strength up to %d meets target %g", lineBits, target)
}

// ExpectedFailedBits returns the expected number of failed bits in a
// memory of totalBits at the given BER (the paper's "≈32K bits per 1Gb
// array" check).
func ExpectedFailedBits(ber float64, totalBits float64) float64 {
	return ber * totalBits
}

// ScrubRow is one point of the scrub-interval analysis.
type ScrubRow struct {
	// IdlePeriods is how many idle episodes accumulate before errors
	// are corrected (scrubbed).
	IdlePeriods int
	// EffectiveBER is the accumulated per-bit failure probability.
	EffectiveBER float64
	// SystemFailure is the ECC-6 whole-memory failure probability at
	// that accumulation.
	SystemFailure float64
}

// ScrubAnalysis quantifies why MECC's ECC-Upgrade sweep doubles as a
// scrubbing pass: if correctable retention errors were left in place
// across k idle episodes instead of being corrected at each wake-up,
// independent failures would accumulate (1-(1-p)^k per bit) and the
// ECC-6 reliability budget would erode. It returns one row per episode
// count in [1, maxPeriods].
func ScrubAnalysis(ber float64, maxPeriods int) ([]ScrubRow, error) {
	if maxPeriods <= 0 {
		return nil, fmt.Errorf("%w: maxPeriods=%d", ErrBadCount, maxPeriods)
	}
	if ber <= 0 || ber >= 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadProbability, ber)
	}
	rows := make([]ScrubRow, 0, maxPeriods)
	for k := 1; k <= maxPeriods; k++ {
		eff := -math.Expm1(float64(k) * math.Log1p(-ber))
		lf, err := LineFailure(DefaultLineBits, 6, eff)
		if err != nil {
			return nil, err
		}
		sf, err := SystemFailure(lf, DefaultMemoryLines)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScrubRow{IdlePeriods: k, EffectiveBER: eff, SystemFailure: sf})
	}
	return rows, nil
}
