package line

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesRoundTrip(t *testing.T) {
	b := make([]byte, Bytes)
	for i := range b {
		b[i] = byte(i * 7)
	}
	ln, err := FromBytes(b)
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	got := ln.Bytes()
	for i := range b {
		if got[i] != b[i] {
			t.Fatalf("byte %d: got %#x want %#x", i, got[i], b[i])
		}
	}
}

func TestFromBytesBadLength(t *testing.T) {
	for _, n := range []int{0, 1, 63, 65, 128} {
		if _, err := FromBytes(make([]byte, n)); err == nil {
			t.Errorf("FromBytes(%d bytes): want error, got nil", n)
		}
	}
}

func TestBitSetGet(t *testing.T) {
	var ln Line
	for _, i := range []int{0, 1, 63, 64, 100, 511} {
		ln = ln.SetBit(i, 1)
		if ln.Bit(i) != 1 {
			t.Fatalf("bit %d: want 1", i)
		}
	}
	if got := ln.PopCount(); got != 6 {
		t.Fatalf("PopCount = %d, want 6", got)
	}
	ln = ln.SetBit(63, 0)
	if ln.Bit(63) != 0 {
		t.Fatal("bit 63: want 0 after clear")
	}
	if got := ln.PopCount(); got != 5 {
		t.Fatalf("PopCount = %d, want 5", got)
	}
}

func TestFlipBit(t *testing.T) {
	var ln Line
	ln = ln.FlipBit(200)
	if ln.Bit(200) != 1 {
		t.Fatal("flip 0->1 failed")
	}
	ln = ln.FlipBit(200)
	if !ln.IsZero() {
		t.Fatal("flip 1->0 failed")
	}
}

func TestDiff(t *testing.T) {
	var a, b Line
	b = b.FlipBit(3).FlipBit(64).FlipBit(511)
	d := a.Diff(b)
	want := []int{3, 64, 511}
	if len(d) != len(want) {
		t.Fatalf("Diff len = %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Diff[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		var ln Line
		for w := range ln {
			ln[w] = rng.Uint64()
		}
		got, err := ParseHex(ln.String())
		if err != nil {
			t.Fatalf("ParseHex: %v", err)
		}
		if got != ln {
			t.Fatalf("round trip mismatch: %v != %v", got, ln)
		}
	}
}

func TestParseHexErrors(t *testing.T) {
	if _, err := ParseHex("zz"); err == nil {
		t.Error("ParseHex(invalid hex): want error")
	}
	if _, err := ParseHex("ab"); err == nil {
		t.Error("ParseHex(short): want error")
	}
}

// Property: XOR is self-inverse and PopCount(a XOR a) == 0.
func TestXORProperties(t *testing.T) {
	f := func(a, b Line) bool {
		if !a.XOR(a).IsZero() {
			return false
		}
		return a.XOR(b).XOR(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Diff(a,b) positions are exactly the set bits of a XOR b.
func TestDiffMatchesXOR(t *testing.T) {
	f := func(a, b Line) bool {
		d := a.Diff(b)
		x := a.XOR(b)
		if len(d) != x.PopCount() {
			return false
		}
		for _, p := range d {
			if x.Bit(p) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPopCount(b *testing.B) {
	var ln Line
	for w := range ln {
		ln[w] = 0xdeadbeefcafebabe
	}
	for i := 0; i < b.N; i++ {
		_ = ln.PopCount()
	}
}
