// Package line provides the 512-bit cache-line value type used throughout
// the simulator. A line is the unit of ECC protection in MECC: 64 bytes of
// data plus 8 bytes of ECC/metadata stored alongside it in the DRAM array.
package line

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
)

// Bits is the number of data bits in a cache line.
const Bits = 512

// Bytes is the number of data bytes in a cache line.
const Bytes = Bits / 8

// ErrBadLength reports a byte slice whose length does not match a line.
var ErrBadLength = errors.New("line: input is not 64 bytes")

// Line is a 512-bit cache line, stored as eight little-endian words.
// Bit i of the line is bit (i%64) of word i/64. The zero value is the
// all-zero line and is ready to use.
type Line [8]uint64

// FromBytes builds a line from exactly 64 bytes (little-endian words).
func FromBytes(b []byte) (Line, error) {
	var ln Line
	if len(b) != Bytes {
		return ln, fmt.Errorf("%w: got %d bytes", ErrBadLength, len(b))
	}
	for w := range ln {
		for i := 0; i < 8; i++ {
			ln[w] |= uint64(b[w*8+i]) << (8 * i)
		}
	}
	return ln, nil
}

// Bytes returns the line as a fresh 64-byte slice (little-endian words).
func (l Line) Bytes() []byte {
	out := make([]byte, Bytes)
	for w, word := range l {
		for i := 0; i < 8; i++ {
			out[w*8+i] = byte(word >> (8 * i))
		}
	}
	return out
}

// Bit returns bit i (0 <= i < 512) of the line.
func (l Line) Bit(i int) uint {
	return uint(l[i>>6]>>(uint(i)&63)) & 1
}

// SetBit sets bit i to v (0 or 1) and returns the updated line.
func (l Line) SetBit(i int, v uint) Line {
	mask := uint64(1) << (uint(i) & 63)
	if v&1 == 1 {
		l[i>>6] |= mask
	} else {
		l[i>>6] &^= mask
	}
	return l
}

// FlipBit inverts bit i and returns the updated line.
func (l Line) FlipBit(i int) Line {
	l[i>>6] ^= uint64(1) << (uint(i) & 63)
	return l
}

// XOR returns the bitwise XOR of two lines.
func (l Line) XOR(o Line) Line {
	for w := range l {
		l[w] ^= o[w]
	}
	return l
}

// PopCount returns the number of set bits in the line.
func (l Line) PopCount() int {
	n := 0
	for _, w := range l {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsZero reports whether every bit of the line is zero.
func (l Line) IsZero() bool {
	return l == Line{}
}

// Diff returns the positions of bits at which l and o differ.
func (l Line) Diff(o Line) []int {
	var pos []int
	for w := range l {
		x := l[w] ^ o[w]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			pos = append(pos, w*64+b)
			x &= x - 1
		}
	}
	return pos
}

// String renders the line as 128 hex digits, word 0 first.
func (l Line) String() string {
	return hex.EncodeToString(l.Bytes())
}

// ParseHex decodes a 128-hex-digit string produced by String.
func ParseHex(s string) (Line, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return Line{}, fmt.Errorf("line: parse hex: %w", err)
	}
	return FromBytes(b)
}
