package main

import (
	"flag"
	"io"
	"os"
	"strings"
	"testing"
)

// runMain invokes run() with a fresh flag set and the given arguments,
// capturing stdout.
func runMain(t *testing.T, args ...string) string {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	os.Args = append([]string{"eccinfo"}, args...)
	flag.CommandLine = flag.NewFlagSet("eccinfo", flag.PanicOnError)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	os.Args, flag.CommandLine = oldArgs, oldFlags
	out := <-outc
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

func TestSmoke(t *testing.T) {
	out := runMain(t, "-demo", "ecc6", "-errors", "6", "-seed", "1")
	for _, want := range []string{"Codec registry", "generator polynomials", "t=6", "Demo: ecc6 with 6 injected errors"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeSECDED(t *testing.T) {
	out := runMain(t, "-demo", "secded-line", "-errors", "1")
	if !strings.Contains(out, "Demo: secded-line with 1 injected errors") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
