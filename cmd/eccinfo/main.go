// Command eccinfo prints the parameters of every codec in the registry —
// correction strength, storage, generator polynomial, modelled hardware
// cost — and runs a demonstration encode/corrupt/decode cycle.
//
// Usage:
//
//	eccinfo [-demo ecc6] [-errors 6] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bch"
	"repro/internal/ecc"
	"repro/internal/line"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eccinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		demo = flag.String("demo", "ecc6", "codec to demonstrate")
		nerr = flag.Int("errors", 6, "bit errors to inject in the demo")
		seed = flag.Int64("seed", 1, "demo RNG seed")
	)
	flag.Parse()

	fmt.Println("Codec registry (per 64-byte line):")
	fmt.Printf("  %-12s %8s %8s %8s %10s %8s %10s\n",
		"name", "correct", "detect", "storage", "dec-cycles", "gates", "dec-pJ")
	for _, name := range ecc.Names() {
		c, err := ecc.ByName(name)
		if err != nil {
			return err
		}
		cost := ecc.DefaultCost(c)
		fmt.Printf("  %-12s %8d %8d %8d %10d %8d %10.1f\n",
			name, c.CorrectBits(), c.DetectBits(), c.StorageBits(),
			cost.DecodeCycles, cost.AreaGates, cost.DecodeEnergyPJ)
	}

	fmt.Println("\nBCH generator polynomials over GF(2^10), primitive poly x^10+x^3+1:")
	for t := 1; t <= 6; t++ {
		code, err := bch.New(t)
		if err != nil {
			return err
		}
		fmt.Printf("  t=%d (%d parity bits): g(x) = %v\n", t, code.ParityBits(), code.Generator())
	}

	fmt.Printf("\nDemo: %s with %d injected errors\n", *demo, *nerr)
	c, err := ecc.ByName(*demo)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var data line.Line
	for w := range data {
		data[w] = rng.Uint64()
	}
	check := c.Encode(data)
	bad := data
	for i := 0; i < *nerr; i++ {
		bad = bad.FlipBit(rng.Intn(line.Bits))
	}
	fmt.Printf("  original:  %s...\n", data.String()[:32])
	fmt.Printf("  corrupted: %s...\n", bad.String()[:32])
	got, res := c.Decode(bad, check)
	switch {
	case res.Uncorrectable:
		fmt.Println("  result: DETECTED UNCORRECTABLE (more errors than t)")
	case got == data:
		fmt.Printf("  result: corrected %d bit errors, data restored\n", res.CorrectedBits)
	default:
		fmt.Println("  result: MISCORRECTED (beyond design distance)")
	}
	return nil
}
