package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// snapshotExhibits are the deterministic exhibits pinned by the golden
// snapshot: the analytic tables/figures plus the phase-pattern day
// simulation. Wall-clock-dependent output (-summary) stays off.
const snapshotExhibits = "table1,fig2,fig8,modes,capacity,day"

// runMain invokes run() with a fresh flag set and the given arguments,
// capturing stdout.
func runMain(t *testing.T, args ...string) string {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	os.Args = append([]string{"paperbench"}, args...)
	flag.CommandLine = flag.NewFlagSet("paperbench", flag.PanicOnError)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	os.Args, flag.CommandLine = oldArgs, oldFlags
	out := <-outc
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

// TestSnapshotScale50 diffs the -scale 50 -seed 1 exhibit output against
// the committed golden summary, so a refactor that silently changes
// results fails loudly. Regenerate with `go test -update` — and eyeball
// the diff first: a changed golden IS a changed result.
func TestSnapshotScale50(t *testing.T) {
	out := runMain(t, "-experiment", snapshotExhibits,
		"-scale", "50", "-seed", "1", "-summary=false", "-check")
	golden := filepath.Join("testdata", "snapshot_scale50.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("exhibit output diverged from %s (run `go test -update` only if the change is intended)\n%s",
			golden, firstDiff(out, string(want)))
	}
}

// TestSnapshotDeterministic runs the same exhibits twice and requires
// byte-identical output: the golden test above is only meaningful if
// the simulator is deterministic under a fixed seed.
func TestSnapshotDeterministic(t *testing.T) {
	a := runMain(t, "-experiment", "day", "-scale", "50", "-seed", "1", "-summary=false")
	b := runMain(t, "-experiment", "day", "-scale", "50", "-seed", "1", "-summary=false")
	if a != b {
		t.Errorf("two identical runs diverged:\n%s", firstDiff(a, b))
	}
}

// firstDiff renders the first differing line of two outputs.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "line " + strconv.Itoa(i+1) + ":\n got: " + g[i] + "\nwant: " + w[i]
		}
	}
	return "lengths differ: got " + strconv.Itoa(len(g)) + " lines, want " + strconv.Itoa(len(w))
}
