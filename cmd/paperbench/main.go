// Command paperbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows the paper reports.
//
// Usage:
//
//	paperbench [-experiment all|table1|table2|table3|table4|fig2|fig3|
//	            fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|
//	            ablations|relatedwork|modes|capacity|day|integrity]
//	           [-scale N] [-seed S] [-parallel P] [-chart]
//	           [-metrics-out FILE] [-trace-out FILE] [-timeline]
//	           [-cpuprofile FILE] [-memprofile FILE]
//	           [-serve ADDR] [-flight N] [-flight-out FILE] [-linger DUR]
//
// -scale divides the paper's 4-billion-instruction slices (footprints
// and SMD windows shrink coherently); -scale 1 is the paper's full
// scale and takes hours.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/bch"
	"repro/internal/checker"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/httpserv"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// exhibit is one runnable experiment; run prints its own section.
type exhibit struct {
	name string
	run  func() error
}

// openOut opens an output sink; "-" is stdout (whose closer is a no-op).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "which exhibit to regenerate (comma-separated, or 'all')")
		scale      = flag.Int("scale", 400, "divide the paper's 4B-instruction slices by this factor")
		seed       = flag.Int64("seed", 1, "workload generator seed")
		parallel   = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		trials     = flag.Int("integrity-trials", 5000, "Monte Carlo trials for -experiment integrity")
		chart      = flag.Bool("chart", false, "render fig7 as an ASCII bar chart too")
		list       = flag.Bool("list", false, "list experiment names and exit")
		summary    = flag.Bool("summary", true, "print per-experiment wall-time and counter summaries")
		metricsOut = flag.String("metrics-out", "", "write the run's metrics to this file (- for stdout; .csv selects CSV, otherwise Prometheus text)")
		traceOut   = flag.String("trace-out", "", "write a JSONL event trace to this file (- for stdout); events from parallel runs interleave")
		traceEvts  = flag.String("trace-events", "mecc_transition,sweep_start,sweep_end,smd_window,smd_enable,smd_disable,refresh_rate", "event kinds to trace: all, or a comma list")
		timeline   = flag.Bool("timeline", false, "render the event-census timeline after the run (implies event collection)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		check      = flag.Bool("check", false, "attach run-time invariant checkers to every simulation; violations fail the run")
		serve      = flag.String("serve", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address while running (e.g. :9090)")
		flightN    = flag.Int("flight", obs.DefaultFlightEvents, "flight-recorder capacity in events (0 disables)")
		flightOut  = flag.String("flight-out", "", "dump the flight recorder to this file at exit and on incident (- for stdout; default incidents go to stderr)")
		linger     = flag.Duration("linger", 0, "keep the obs server up this long after the run completes")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperbench: memprofile:", err)
			}
		}()
	}

	if *list {
		fmt.Println("table1   Table I: failure probability vs ECC strength (analytic)")
		fmt.Println("table2   Table II: baseline system configuration")
		fmt.Println("table3   Table III: benchmark characterization (simulated)")
		fmt.Println("table4   Table IV: memory power parameters")
		fmt.Println("fig2     retention-time distribution (analytic)")
		fmt.Println("fig3     decode-latency performance impact by class")
		fmt.Println("fig7     SECDED / ECC-6 / MECC normalized IPC (headline)")
		fmt.Println("fig8     idle-mode refresh and total power (analytic)")
		fmt.Println("fig9     active-mode power / energy / EDP")
		fmt.Println("fig10    total energy at 95% idle")
		fmt.Println("fig11    MDT-tracked memory per benchmark")
		fmt.Println("fig12    ECC-6 decode-latency sensitivity sweep")
		fmt.Println("fig13    MECC warm-up transient vs slice length")
		fmt.Println("fig14    SMD downgrade-disabled time")
		fmt.Println("ablations  MDT/SMD/refresh/mapping/REFpb/weak-code/scrub/scheduler/prefetch/temperature")
		fmt.Println("relatedwork  RAIDR/Flikker/SECRET vs MECC under VRT; Hi-ECC granularity")
		fmt.Println("modes    SR/PASR/DPD/MECC power vs capacity")
		fmt.Println("capacity idle power and savings vs memory size")
		fmt.Println("day      Fig 1 usage pattern through the phase simulator")
		fmt.Println("daemon   Section VI-B idle-daemon study (SMD on/off)")
		fmt.Println("model    simulator vs first-order CPI theory")
		fmt.Println("integrity  end-to-end fault-injection Monte Carlo")
		return nil
	}

	// The harness always carries a recorder: per-simulation counters are
	// atomic adds that never change results, and the wall-time summary
	// reuses the same registry. The event log is opt-in via -trace-out /
	// -timeline.
	rec := obs.New()
	var flight *obs.FlightRecorder
	if *flightN > 0 {
		flight = obs.NewFlightRecorder(*flightN)
		rec.SetFlightRecorder(flight)
	}
	prog := obs.NewProgress()
	rec.SetProgress(prog)
	var elog *obs.EventLog
	if *traceOut != "" || *timeline {
		mask, err := obs.ParseKindMask(*traceEvts)
		if err != nil {
			return err
		}
		elog = obs.NewEventLog()
		elog.SetMask(mask)
		if *traceOut != "" {
			w, closeFn, err := openOut(*traceOut)
			if err != nil {
				return err
			}
			defer func() {
				if cerr := closeFn(); cerr != nil {
					fmt.Fprintln(os.Stderr, "paperbench: close trace-out:", cerr)
				}
			}()
			elog.SetStream(w)
		}
		rec.SetEventLog(elog)
	}
	bch.SetObserver(rec)
	defer bch.SetObserver(nil)
	batch.SetObserver(rec)
	defer batch.SetObserver(nil)

	// Incident handling: dump the flight recorder's tail once on the
	// first of checker fire, panic, SIGQUIT, or (with -flight-out)
	// normal exit.
	dumpFlight := newFlightDumper("paperbench", flight, *flightOut)
	if flight != nil {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			dumpFlight("SIGQUIT")
			os.Exit(2)
		}()
		defer func() {
			if p := recover(); p != nil {
				dumpFlight("panic")
				panic(p)
			}
			if *flightOut != "" {
				dumpFlight("exit")
			}
		}()
	}

	var srv *httpserv.Server
	if *serve != "" {
		srv = httpserv.New(httpserv.Config{
			Registry: rec.Registry(),
			Progress: prog,
			Flight:   flight,
		})
		addr, err := srv.Start(*serve)
		if err != nil {
			return fmt.Errorf("obs server: %w", err)
		}
		defer func() {
			if cerr := srv.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "paperbench: close obs server:", cerr)
			}
		}()
		fmt.Fprintf(os.Stderr, "paperbench: obs server on http://%s (/metrics /healthz /progress /flight /debug/pprof)\n", addr)
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "paperbench: obs server lingering %s on http://%s\n", *linger, addr)
				time.Sleep(*linger)
			}
		}()
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Parallel: *parallel, Obs: rec}
	if *check {
		opts.Check = checker.NewSuite()
		opts.Check.SetOnViolation(func(v checker.Violation) {
			dumpFlight("invariant " + v.Invariant)
		})
	}
	if err := opts.Validate(); err != nil {
		return err
	}
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		return err
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*experiment, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	section := func(title string) {
		fmt.Printf("\n=== %s ===\n", title)
	}

	exhibits := []exhibit{
		{"table1", func() error {
			res, err := experiments.TableI()
			if err != nil {
				return err
			}
			section("Table I: line and system failure probability (BER 10^-4.5, 64B lines, 1GB)")
			fmt.Print(res.Rendered)
			fmt.Printf("Required strength incl. soft-error margin: ECC-%d\n", res.RequiredStrength)
			return nil
		}},
		{"table2", func() error {
			section("Table II: baseline system configuration")
			fmt.Print(experiments.TableII())
			return nil
		}},
		{"table3", func() error {
			start := time.Now()
			res, err := experiments.TableIII(suite)
			if err != nil {
				return err
			}
			section(fmt.Sprintf("Table III: benchmark characterization (measured, scale 1/%d, %v)", *scale, time.Since(start).Round(time.Millisecond)))
			fmt.Print(res.Rendered)
			return nil
		}},
		{"table4", func() error {
			section("Table IV: memory power parameters")
			fmt.Print(experiments.TableIV())
			return nil
		}},
		{"fig2", func() error {
			res := experiments.Fig2()
			section(fmt.Sprintf("Fig 2: retention-time distribution (log-log slope %.2f)", res.Slope))
			fmt.Print(res.Rendered)
			return nil
		}},
		{"fig3", func() error {
			res, err := experiments.Fig3(suite)
			if err != nil {
				return err
			}
			section("Fig 3: performance impact of decode latency (normalized IPC)")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"fig7", func() error {
			res, err := experiments.Fig7(suite)
			if err != nil {
				return err
			}
			section("Fig 7: SECDED / ECC-6 / MECC normalized IPC per benchmark")
			fmt.Print(res.Rendered)
			if *chart {
				bc := stats.NewBarChart(50)
				bc.SetReference(1.0)
				for _, bar := range res.Bars {
					bc.Add(bar.Name, "SECDED", bar.SECDED)
					bc.Add(bar.Name, "ECC-6", bar.ECC6)
					bc.Add(bar.Name, "MECC", bar.MECC)
				}
				fmt.Println()
				fmt.Print(bc.String())
			}
			return nil
		}},
		{"fig8", func() error {
			res, err := experiments.Fig8()
			if err != nil {
				return err
			}
			section("Fig 8: idle-mode refresh and total power (normalized to baseline)")
			fmt.Print(res.Rendered)
			fmt.Printf("Idle power reduction with MECC: %.1f%%\n", res.Reduction*100)
			return nil
		}},
		{"fig9", func() error {
			res, err := experiments.Fig9(suite)
			if err != nil {
				return err
			}
			section("Fig 9: active-mode power / energy / EDP (geomean, normalized)")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"fig10", func() error {
			res, err := experiments.Fig10(suite)
			if err != nil {
				return err
			}
			section("Fig 10: total memory energy at 95% idle (normalized to baseline total)")
			fmt.Print(res.Rendered)
			fmt.Printf("Total memory energy saving with MECC: %.1f%%\n", res.Saving*100)
			return nil
		}},
		{"fig11", func() error {
			res, err := experiments.Fig11(opts)
			if err != nil {
				return err
			}
			section("Fig 11: memory tracked by 1K-entry MDT (full footprints)")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"fig12", func() error {
			res, err := experiments.Fig12(suite)
			if err != nil {
				return err
			}
			section("Fig 12: sensitivity to ECC-6 decode latency (normalized IPC)")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"fig13", func() error {
			res, err := experiments.Fig13(suite)
			if err != nil {
				return err
			}
			section("Fig 13: MECC warm-up transient vs slice length")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"fig14", func() error {
			res, err := experiments.Fig14(suite)
			if err != nil {
				return err
			}
			section("Fig 14: SMD downgrade-disabled execution time (MPKC threshold 2)")
			fmt.Print(res.Rendered)
			fmt.Printf("Benchmarks never enabling ECC-Downgrade: %d of 28\n", res.NeverEnabled)
			return nil
		}},
		{"ablations", func() error {
			mdt, err := experiments.AblationMDT(opts)
			if err != nil {
				return err
			}
			section("Ablation: MDT region-count sweep")
			fmt.Print(mdt.Rendered)

			smd, err := experiments.AblationSMDThreshold(suite)
			if err != nil {
				return err
			}
			section("Ablation: SMD threshold sweep")
			fmt.Print(smd.Rendered)

			ref, err := experiments.AblationRefreshSweep()
			if err != nil {
				return err
			}
			section("Ablation: refresh period vs required ECC strength")
			fmt.Print(ref.Rendered)

			mapping, err := experiments.AblationMapping(opts)
			if err != nil {
				return err
			}
			section("Ablation: address-interleaving policy")
			fmt.Print(mapping.Rendered)

			policy, err := experiments.AblationRefreshPolicy(opts)
			if err != nil {
				return err
			}
			section("Ablation: all-bank REF vs per-bank REFpb")
			fmt.Print(policy.Rendered)

			weak, err := experiments.AblationWeakCode(2000, *seed)
			if err != nil {
				return err
			}
			section("Ablation: weak-code choice under active-mode soft errors")
			fmt.Print(weak.Rendered)

			scrub, err := experiments.ScrubTable()
			if err != nil {
				return err
			}
			section("Ablation: scrub interval (idle periods between corrections)")
			fmt.Print(scrub)

			sched, err := experiments.AblationScheduler(opts)
			if err != nil {
				return err
			}
			section("Ablation: memory-scheduler policy")
			fmt.Print(sched.Rendered)

			pf, err := experiments.AblationPrefetch(opts)
			if err != nil {
				return err
			}
			section("Ablation: next-line prefetcher (under MECC)")
			fmt.Print(pf.Rendered)

			temp, err := experiments.AblationTemperature()
			if err != nil {
				return err
			}
			section("Ablation: junction temperature vs required ECC at 1s refresh")
			fmt.Print(temp.Rendered)
			return nil
		}},
		{"day", func() error {
			res, err := experiments.DayInTheLife(opts)
			if err != nil {
				return err
			}
			section("Day-in-the-life: Fig 1 usage pattern through the phase simulator")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"relatedwork", func() error {
			res, err := experiments.RelatedWork(*seed)
			if err != nil {
				return err
			}
			section("Related work (Section VII): refresh schemes under VRT")
			fmt.Print(res.Rendered)

			hi := experiments.HiECC()
			section("Related work (Section VII-C): Hi-ECC granularity trade-off")
			fmt.Print(hi.Rendered)
			return nil
		}},
		{"modes", func() error {
			res, err := experiments.RefreshModes()
			if err != nil {
				return err
			}
			section("Refresh modes (Section II-A): power vs usable capacity")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"daemon", func() error {
			res, err := experiments.Daemon(opts)
			if err != nil {
				return err
			}
			section("Daemon study (Section VI-B): SMD keeps slow refresh through background activity")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"model", func() error {
			res, err := experiments.ModelValidation(suite)
			if err != nil {
				return err
			}
			section("Model validation: simulator vs first-order CPI theory (ECC-6)")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"capacity", func() error {
			res, err := experiments.CapacityScaling()
			if err != nil {
				return err
			}
			section("Capacity scaling: idle power and MECC savings vs memory size")
			fmt.Print(res.Rendered)
			return nil
		}},
		{"integrity", func() error {
			res, err := experiments.Integrity(*trials, 0, *seed)
			if err != nil {
				return err
			}
			section("Integrity: end-to-end fault injection through the real codecs")
			fmt.Print(res.Rendered)
			return nil
		}},
	}

	// Run the selected exhibits in order, timing each one into the
	// registry (exp_<name>_wall_seconds) and the summary table.
	type timing struct {
		name string
		d    time.Duration
	}
	var timings []timing
	for _, e := range exhibits {
		if !selected(e.name) {
			continue
		}
		// /progress reports the exhibit currently running; runMany
		// refines done/total to the simulation jobs inside it. Each
		// exhibit is also a wall-clock trace span, sitting alongside the
		// harness's per-job spans in obsdump's latency summary.
		prog.SetPhase(e.name)
		start := time.Now()
		sp := rec.StartSpan("exhibit:"+e.name, uint64(start.UnixNano()))
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		sp.End(uint64(time.Now().UnixNano()))
		d := time.Since(start)
		timings = append(timings, timing{e.name, d})
		rec.Gauge("exp_" + e.name + "_wall_seconds").Set(d.Seconds())
	}
	prog.SetPhase("done")
	if len(timings) == 0 {
		return fmt.Errorf("unknown experiment %q", *experiment)
	}

	if *summary {
		section("Run summary")
		tb := stats.NewTable("experiment", "wall")
		var total time.Duration
		for _, t := range timings {
			tb.AddRow(t.name, t.d.Round(time.Millisecond).String())
			total += t.d
		}
		tb.AddRow("total", total.Round(time.Millisecond).String())
		fmt.Print(tb.String())
		printCounters(rec.Registry())
	}
	if *metricsOut != "" {
		if err := writeMetrics(rec.Registry(), *metricsOut); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if err := rec.Flush(); err != nil {
		return fmt.Errorf("flush trace: %w", err)
	}
	if *timeline {
		fmt.Println()
		fmt.Print(obs.NewTimeline(nil, elog.Events()).String())
	}
	if opts.Check != nil {
		for _, v := range opts.Check.Violations() {
			fmt.Fprintln(os.Stderr, "paperbench: violation:", v)
		}
		if err := opts.Check.Err(); err != nil {
			return err
		}
		fmt.Println("\ninvariant checkers: all clean")
	}
	return nil
}

// newFlightDumper returns a dump function that writes the flight
// recorder's contents as JSONL exactly once, no matter how many
// incident paths race to trigger it. path selects the sink ("" or an
// open failure falls back to stderr; "-" is stdout). A nil recorder
// yields a no-op.
func newFlightDumper(tool string, f *obs.FlightRecorder, path string) func(reason string) {
	var once sync.Once
	return func(reason string) {
		if f == nil {
			return
		}
		once.Do(func() {
			w, closeFn := io.Writer(os.Stderr), func() error { return nil }
			if path != "" {
				if ww, cf, err := openOut(path); err != nil {
					fmt.Fprintf(os.Stderr, "%s: flight-out: %v (dumping to stderr)\n", tool, err)
				} else {
					w, closeFn = ww, cf
				}
			}
			fmt.Fprintf(os.Stderr, "%s: dumping flight recorder (%s, %d events)\n", tool, reason, len(f.Events()))
			if err := f.WriteJSONL(w); err != nil {
				fmt.Fprintf(os.Stderr, "%s: flight dump: %v\n", tool, err)
			}
			if err := closeFn(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: flight dump close: %v\n", tool, err)
			}
		})
	}
}

// printCounters renders the non-zero counters accumulated across every
// simulation of the run.
func printCounters(reg *obs.Registry) {
	names := reg.CounterNames()
	tb := stats.NewTable("counter", "value")
	rows := 0
	for _, n := range names {
		if v := reg.Counter(n).Value(); v > 0 {
			tb.AddRow(n, fmt.Sprintf("%d", v))
			rows++
		}
	}
	if rows == 0 {
		return
	}
	fmt.Println()
	fmt.Print(tb.String())
}

// writeMetrics dumps the registry to path — CSV when the name ends in
// .csv, Prometheus text exposition otherwise.
func writeMetrics(reg *obs.Registry, path string) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = reg.WriteCSV(w)
	} else {
		err = reg.WriteProm(w)
	}
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}
