// Command obsscrape fetches (or reads) a Prometheus text-format
// exposition and validates it with the same strict parser the obs
// package tests itself against — malformed lines, bad label escapes,
// duplicate TYPE headers or non-numeric values all fail the scrape.
// CI uses it to prove a live `meccsim -serve` endpoint emits a
// well-formed /metrics page without adding any external dependency.
//
// Usage:
//
//	obsscrape [-require name,name,...] [-timeout DUR] [-quiet] URL|FILE|-
//
// A URL argument (http:// or https://) is fetched; anything else is a
// file path, with "-" (or no argument) reading stdin. -require fails
// the run unless every named metric appears in the scrape (a base name
// matches its labeled series too). On success the family and sample
// counts are printed; exit status is non-zero on any failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obsscrape:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		require = flag.String("require", "", "comma-separated metric names that must appear")
		timeout = flag.Duration("timeout", 5*time.Second, "HTTP fetch timeout")
		quiet   = flag.Bool("quiet", false, "print nothing on success")
	)
	flag.Parse()
	if flag.NArg() > 1 {
		return fmt.Errorf("at most one source expected")
	}
	src := "-"
	if flag.NArg() == 1 {
		src = flag.Arg(0)
	}

	var in io.Reader = os.Stdin
	switch {
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		client := &http.Client{Timeout: *timeout}
		resp, err := client.Get(src)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			return fmt.Errorf("GET %s: content-type %q, want text/plain", src, ct)
		}
		in = resp.Body
	case src != "-":
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	scrape, err := obs.ParseProm(in)
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}

	if *require != "" {
		have := map[string]bool{}
		for _, s := range scrape.Samples {
			have[s.Name] = true
			// A histogram or labeled family satisfies its base name.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				have[strings.TrimSuffix(s.Name, suf)] = true
			}
		}
		var missing []string
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !have[want] {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("required metrics missing from scrape: %s", strings.Join(missing, ", "))
		}
	}

	if !*quiet {
		fmt.Printf("ok: %d families, %d samples\n", len(scrape.Families), len(scrape.Samples))
	}
	return nil
}
