package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
)

// runMain invokes run() with a fresh flag set and the given arguments,
// capturing stdout.
func runMain(t *testing.T, args ...string) string {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	os.Args = append([]string{"meccsim"}, args...)
	flag.CommandLine = flag.NewFlagSet("meccsim", flag.PanicOnError)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	os.Args, flag.CommandLine = oldArgs, oldFlags
	out := <-outc
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

// TestSmokeCheckedJSON runs a small checked simulation and parses the
// JSON report — the run must finish with zero invariant violations
// (violations make run() return an error).
func TestSmokeCheckedJSON(t *testing.T) {
	out := runMain(t, "-bench", "libq", "-scheme", "mecc", "-scale", "20000", "-seed", "1", "-check", "-json")
	var res sim.Result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.Benchmark != "libq" || res.Scheme != sim.SchemeMECC {
		t.Errorf("result header = %s/%v", res.Benchmark, res.Scheme)
	}
	if res.Instructions == 0 || res.IPC <= 0 {
		t.Errorf("empty run: %+v", res)
	}
}

func TestSmokeTextReport(t *testing.T) {
	out := runMain(t, "-bench", "gcc", "-scheme", "ecc6", "-scale", "20000")
	for _, want := range []string{"benchmark", "IPC", "energy", "EDP"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeList(t *testing.T) {
	out := runMain(t, "-list")
	if !strings.Contains(out, "libq") || !strings.Contains(out, "gcc") {
		t.Errorf("benchmark list incomplete:\n%s", out)
	}
}
