// Command meccsim runs one benchmark under one error-protection scheme
// and prints the full figure-of-merit report.
//
// Usage:
//
//	meccsim -bench libq -scheme mecc [-scale 400] [-seed 1]
//	        [-declat 30] [-smd] [-no-mdt] [-checkpoints 0]
package main

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/bch"
	"repro/internal/checker"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/obs/httpserv"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// openOut opens an output sink; "-" is stdout (whose closer is a no-op).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// writeMetrics dumps the registry to path — CSV when the name ends in
// .csv, Prometheus text exposition otherwise.
func writeMetrics(reg *obs.Registry, path string) error {
	w, closeFn, err := openOut(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = reg.WriteCSV(w)
	} else {
		err = reg.WriteProm(w)
	}
	if cerr := closeFn(); err == nil {
		err = cerr
	}
	return err
}

// openTrace opens a trace file as a streaming source; the returned
// closer releases the file once the run completes.
func openTrace(path, format string) (trace.Source, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("open trace: %w", err)
	}
	closer := func() {
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "meccsim: close trace:", cerr)
		}
	}
	var reader io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			closer()
			return nil, nil, fmt.Errorf("open gzip trace: %w", err)
		}
		reader = zr
	}
	switch format {
	case "text":
		recs, err := trace.ReadText(reader)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return trace.NewSliceSource(recs), closer, nil
	case "bin":
		br, err := trace.NewBinaryReader(reader)
		if err != nil {
			closer()
			return nil, nil, err
		}
		return br, closer, nil
	default:
		closer()
		return nil, nil, fmt.Errorf("unknown trace format %q", format)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "meccsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bench       = flag.String("bench", "libq", "benchmark name (see -list)")
		schemeName  = flag.String("scheme", "mecc", "baseline | secded | ecc6 | mecc")
		scale       = flag.Int("scale", 400, "divide the paper's 4B-instruction slice")
		seed        = flag.Int64("seed", 1, "workload seed")
		decLat      = flag.Int("declat", 30, "ECC-6 decode latency in CPU cycles")
		smd         = flag.Bool("smd", false, "enable Selective Memory Downgrade")
		noMDT       = flag.Bool("no-mdt", false, "disable Memory Downgrade Tracking")
		checkpoints = flag.Int64("checkpoints", 0, "record IPC every N instructions")
		list        = flag.Bool("list", false, "list benchmarks and exit")
		asJSON      = flag.Bool("json", false, "emit the result as JSON instead of text")
		traceFile   = flag.String("trace", "", "replay this trace file instead of the synthetic generator (text or binary per -trace-format)")
		traceFormat = flag.String("trace-format", "text", "text | bin")
		ranks       = flag.Int("ranks", 1, "DRAM ranks on the channel")
		mapping     = flag.String("mapping", "row-bank-col", "address interleave: row-bank-col | bank-row-col | xor")
		closedPage  = flag.Bool("closed-page", false, "use the closed-page row policy")
		fcfs        = flag.Bool("fcfs", false, "strict FCFS scheduling (disable row-hit-first)")
		perBankRef  = flag.Bool("per-bank-refresh", false, "use LPDDR per-bank refresh (REFpb)")
		traceOut    = flag.String("trace-out", "", "write a JSONL event trace to this file (- for stdout)")
		traceEvents = flag.String("trace-events", "all", "event kinds to trace: all, or a comma list (dram_cmd,refresh,mecc_transition,smd_enable,...)")
		metricsOut  = flag.String("metrics-out", "", "write run metrics to this file (- for stdout; .csv selects CSV, otherwise Prometheus text)")
		timeline    = flag.Bool("timeline", false, "render an ASCII run timeline after the report")
		check       = flag.Bool("check", false, "attach run-time invariant checkers; violations fail the run")
		serve       = flag.String("serve", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address while running (e.g. :9090)")
		flightN     = flag.Int("flight", obs.DefaultFlightEvents, "flight-recorder capacity in events (0 disables)")
		flightOut   = flag.String("flight-out", "", "dump the flight recorder to this file at exit and on incident (- for stdout; default incidents go to stderr)")
		linger      = flag.Duration("linger", 0, "keep the obs server up this long after the run completes")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			p, err := workload.ByName(n)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %-10s MPKI %5.1f  footprint %4d MB\n", n, p.Class(), p.MPKI, p.FootprintMB)
		}
		for _, p := range workload.Mobile() {
			fmt.Printf("%-10s %-10s MPKI %5.1f  footprint %4d MB (mobile)\n", p.Name, p.Class(), p.MPKI, p.FootprintMB)
		}
		return nil
	}
	if *scale < 1 {
		return fmt.Errorf("scale must be >= 1")
	}
	kind, err := sim.ParseScheme(*schemeName)
	if err != nil {
		return err
	}
	prof, err := workload.ByName(*bench)
	if err != nil {
		if prof, err = workload.MobileByName(*bench); err != nil {
			return err
		}
	}
	cfg := sim.DefaultConfig(kind, 4_000_000_000/int64(*scale))
	cfg.Seed = *seed
	cfg.StrongDecodeCycles = *decLat
	cfg.DRAM.Ranks = *ranks
	switch *mapping {
	case "row-bank-col":
		cfg.DRAM.Mapping = dram.MapRowBankCol
	case "bank-row-col":
		cfg.DRAM.Mapping = dram.MapBankRowCol
	case "xor":
		cfg.DRAM.Mapping = dram.MapRowXORBankCol
	default:
		return fmt.Errorf("unknown mapping %q", *mapping)
	}
	if *closedPage {
		cfg.Ctrl.PagePolicy = memctrl.ClosedPage
	}
	cfg.Ctrl.FCFS = *fcfs
	cfg.Ctrl.PerBankRefresh = *perBankRef
	cfg.MECC.SMDEnabled = *smd
	cfg.MECC.MDTEnabled = !*noMDT
	cfg.MECC.SMDWindowCycles /= uint64(*scale)
	if cfg.MECC.SMDWindowCycles == 0 {
		cfg.MECC.SMDWindowCycles = 1
	}
	cfg.CheckpointEvery = *checkpoints

	// Telemetry. The flight recorder is on by default — its record path
	// is lock-free and allocation-free, so it rides along at negligible
	// cost and there is always a tail of recent events to dump when
	// something breaks. Passing -flight 0 with no other telemetry flag
	// keeps cfg.Obs nil and the hot paths on their zero-cost branches.
	var (
		elog    *obs.EventLog
		sampler *obs.Sampler
		flight  *obs.FlightRecorder
		prog    *obs.Progress
	)
	if *traceOut != "" || *metricsOut != "" || *timeline || *serve != "" || *flightN > 0 {
		rec := obs.New()
		if *flightN > 0 {
			flight = obs.NewFlightRecorder(*flightN)
			rec.SetFlightRecorder(flight)
		}
		prog = obs.NewProgress()
		rec.SetProgress(prog)
		if *traceOut != "" || *timeline {
			mask, err := obs.ParseKindMask(*traceEvents)
			if err != nil {
				return err
			}
			elog = obs.NewEventLog()
			elog.SetMask(mask)
			if *traceOut != "" {
				w, closeFn, err := openOut(*traceOut)
				if err != nil {
					return err
				}
				defer func() {
					if cerr := closeFn(); cerr != nil {
						fmt.Fprintln(os.Stderr, "meccsim: close trace-out:", cerr)
					}
				}()
				elog.SetStream(w)
			}
			rec.SetEventLog(elog)
		}
		if *timeline {
			var err error
			if sampler, err = obs.NewSampler(cfg.MECC.SMDWindowCycles); err != nil {
				return err
			}
			rec.SetSampler(sampler)
		}
		bch.SetObserver(rec)
		defer bch.SetObserver(nil)
		batch.SetObserver(rec)
		defer batch.SetObserver(nil)
		cfg.Obs = rec
	}

	// dumpFlight writes the ring's tail once — on the first of: checker
	// invariant fire, panic in the run, SIGQUIT, or (when -flight-out is
	// set) normal exit. Incidents go to -flight-out when set, stderr
	// otherwise.
	dumpFlight := newFlightDumper("meccsim", flight, *flightOut)
	if flight != nil {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			dumpFlight("SIGQUIT")
			os.Exit(2)
		}()
		defer func() {
			if p := recover(); p != nil {
				dumpFlight("panic")
				panic(p)
			}
			if *flightOut != "" {
				dumpFlight("exit")
			}
		}()
	}

	if *check {
		cfg.Check = checker.NewSuite()
		cfg.Check.SetOnViolation(func(v checker.Violation) {
			dumpFlight("invariant " + v.Invariant)
		})
	}

	var srv *httpserv.Server
	if *serve != "" {
		srv = httpserv.New(httpserv.Config{
			Registry: cfg.Obs.Registry(),
			Progress: prog,
			Flight:   flight,
		})
		addr, err := srv.Start(*serve)
		if err != nil {
			return fmt.Errorf("obs server: %w", err)
		}
		defer func() {
			if cerr := srv.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "meccsim: close obs server:", cerr)
			}
		}()
		fmt.Fprintf(os.Stderr, "meccsim: obs server on http://%s (/metrics /healthz /progress /flight /debug/pprof)\n", addr)
		// Registered after the Close defer so it runs first: hold the
		// server up for late scrapes, then tear it down.
		defer func() {
			if *linger > 0 {
				fmt.Fprintf(os.Stderr, "meccsim: obs server lingering %s on http://%s\n", *linger, addr)
				time.Sleep(*linger)
			}
		}()
	}

	var res sim.Result
	var runner *sim.Runner
	if *traceFile != "" {
		src, closer, err := openTrace(*traceFile, *traceFormat)
		if err != nil {
			return err
		}
		defer closer()
		if runner, err = sim.NewRunnerWithSource(prof.Scaled(*scale), src, cfg); err != nil {
			return err
		}
	} else if runner, err = sim.NewRunner(prof.Scaled(*scale), cfg); err != nil {
		return err
	}
	runner.RegisterProbes(sampler)
	if res, err = runner.Run(); err != nil {
		return err
	}
	if cfg.Check != nil {
		for _, v := range cfg.Check.Violations() {
			fmt.Fprintln(os.Stderr, "meccsim: violation:", v)
		}
		if err := cfg.Check.Err(); err != nil {
			return err
		}
	}
	if cfg.Obs != nil {
		if err := cfg.Obs.Flush(); err != nil {
			return fmt.Errorf("flush trace: %w", err)
		}
		if *metricsOut != "" {
			if err := writeMetrics(cfg.Obs.Registry(), *metricsOut); err != nil {
				return fmt.Errorf("write metrics: %w", err)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		return renderTimeline(*timeline, sampler, elog)
	}

	fmt.Printf("benchmark        %s (%s)\n", res.Benchmark, prof.Class())
	fmt.Printf("scheme           %s (strong decode %d cycles)\n", res.Scheme, *decLat)
	fmt.Printf("instructions     %d (scale 1/%d)\n", res.Instructions, *scale)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("IPC              %.4f\n", res.IPC)
	fmt.Printf("MPKI             %.2f\n", res.MPKI)
	fmt.Printf("avg read latency %.1f CPU cycles (excl. decode)\n", res.AvgReadLatencyCPU)
	ratio := cfg.DRAM.CPURatio()
	fmt.Printf("read latency     p50 <= %d, p99 <= %d CPU cycles\n",
		res.Ctrl.LatencyPercentile(0.50)*uint64(ratio),
		res.Ctrl.LatencyPercentile(0.99)*uint64(ratio))
	fmt.Printf("mem stall        %.1f%% of cycles\n", float64(res.MemStallCycles)/float64(res.Cycles)*100)
	hits, misses := res.DRAM.RowHits, res.DRAM.RowMisses
	if hits+misses > 0 {
		fmt.Printf("row-buffer hits  %.1f%%\n", float64(hits)/float64(hits+misses)*100)
	}
	fmt.Printf("DRAM commands    ACT %d  RD %d  WR %d  REF %d\n",
		res.DRAM.NACT, res.DRAM.NRD, res.DRAM.NWR, res.DRAM.NREF)
	fmt.Printf("energy           DRAM %.3f mJ + codecs %.3f uJ\n",
		res.Energy.Total()*1e3, res.ECCEnergyJ*1e6)
	fmt.Printf("active power     %.1f mW over %.3f s\n", res.ActivePowerW*1e3, res.ActiveTimeSec)
	fmt.Printf("EDP              %.3e J*s\n", res.EDP)
	if res.MECC != nil {
		m := res.MECC
		fmt.Printf("MECC             strong reads %d, weak reads %d, downgrades %d\n",
			m.StrongReads, m.WeakReads, m.Downgrades)
		if m.ActiveCycles > 0 {
			fmt.Printf("SMD              downgrade disabled %.1f%% of time (%d windows, %d enables)\n",
				float64(m.DowngradeDisabledCycles)/float64(m.ActiveCycles)*100,
				m.SMDWindows, m.SMDEnables)
		}
	}
	for _, cp := range res.Checkpoints {
		fmt.Printf("checkpoint       %12d instr  IPC %.4f\n", cp.Instructions, cp.IPC)
	}
	return renderTimeline(*timeline, sampler, elog)
}

// newFlightDumper returns a dump function that writes the flight
// recorder's contents as JSONL exactly once, no matter how many
// incident paths race to trigger it. path selects the sink ("" or an
// open failure falls back to stderr; "-" is stdout). A nil recorder
// yields a no-op.
func newFlightDumper(tool string, f *obs.FlightRecorder, path string) func(reason string) {
	var once sync.Once
	return func(reason string) {
		if f == nil {
			return
		}
		once.Do(func() {
			w, closeFn := io.Writer(os.Stderr), func() error { return nil }
			if path != "" {
				if ww, cf, err := openOut(path); err != nil {
					fmt.Fprintf(os.Stderr, "%s: flight-out: %v (dumping to stderr)\n", tool, err)
				} else {
					w, closeFn = ww, cf
				}
			}
			fmt.Fprintf(os.Stderr, "%s: dumping flight recorder (%s, %d events)\n", tool, reason, len(f.Events()))
			if err := f.WriteJSONL(w); err != nil {
				fmt.Fprintf(os.Stderr, "%s: flight dump: %v\n", tool, err)
			}
			if err := closeFn(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: flight dump close: %v\n", tool, err)
			}
		})
	}
}

// renderTimeline prints the ASCII run timeline when requested.
func renderTimeline(on bool, sampler *obs.Sampler, elog *obs.EventLog) error {
	if !on {
		return nil
	}
	var events []obs.Event
	if elog != nil {
		events = elog.Events()
	}
	fmt.Println()
	fmt.Print(obs.NewTimeline(sampler, events).String())
	return nil
}
