// Command meccvet is the project's static-analysis multichecker:
// seventeen analyzers that pin the simulator's compile-time invariants —
// deterministic replay, the zero-allocation hot path (locally and
// through the whole callee closure), nil-safe telemetry hooks,
// unit-safe clock conversions (typed and name-inferred), documented
// panics, sentinel-error wrapping, batch-worker write discipline, seed
// provenance, atomic-field access discipline, the seqlock writer/reader
// protocol shape, unsigned cycle-arithmetic wrap guards, an SSA escape
// audit that retires stale hot-path allow directives, and the
// concurrency layer built on points-to and happens-before analysis:
// lockorder (lock-order cycles and double acquisition of non-reentrant
// mutexes, intra- and interprocedural), goleak (goroutines whose every
// path blocks forever, WaitGroup Add/Done accounting), and
// chandiscipline (single closing owner, send-after-close, dead
// receives). Run it over the module with
//
//	go run ./cmd/meccvet ./...
//
// (or `make lint`). It exits non-zero on any diagnostic; suppress an
// individual finding with a `//meccvet:allow <analyzer> -- reason`
// comment on or directly above the offending line, and declare an
// intentional lock hierarchy with `//meccvet:lockorder -- reason`.
//
// Machine-readable output and the CI baseline workflow:
//
//	meccvet -format json ./...          # versioned JSON report
//	meccvet -format sarif ./...         # SARIF 2.1.0 for code scanning
//	meccvet -baseline lint.baseline.json ./...   # fail only on NEW findings
//	meccvet -baseline lint.baseline.json -write-baseline ./...  # accept current
//
// The baseline matches findings on (file, analyzer, message), ignoring
// line numbers, so unrelated edits do not break CI.
//
// Incremental runs: `-cache-dir DIR` keeps a per-package fact cache
// keyed by content hashes of each package's files and dependency
// closure. A warm run over an unchanged tree replays every finding
// from `go list` metadata alone (no parsing or type-checking); after
// an edit, package-local analyzers skip every unchanged package while
// the whole-program analyzers re-run. `-timings` attributes wall time
// per analyzer on stderr. See DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run drives the multichecker; split from main so cmd tests can invoke
// it in-process.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("meccvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	outPath := fs.String("o", "", "write output to this file instead of stdout")
	basePath := fs.String("baseline", "", "baseline file: filter out accepted findings")
	writeBase := fs.Bool("write-baseline", false, "write the current findings to -baseline and exit")
	cacheDir := fs.String("cache-dir", "", "incremental fact cache directory: skip unchanged packages")
	timings := fs.Bool("timings", false, "print per-analyzer wall time to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "meccvet: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	if *writeBase && *basePath == "" {
		fmt.Fprintln(stderr, "meccvet: -write-baseline requires -baseline")
		return 2
	}

	// Resolve the baseline before the (slow) load-and-run so a mistyped
	// path fails in milliseconds, not after a full analysis pass.
	var baseline *analysis.Baseline
	if *basePath != "" && !*writeBase {
		b, err := analysis.LoadBaseline(*basePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		baseline = b
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := analysis.Select(names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var times map[string]time.Duration
	if *timings {
		times = make(map[string]time.Duration)
	}
	var diags []analysis.Diagnostic
	if *cacheDir != "" {
		cache, err := analysis.OpenFactCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		d, stats, err := analysis.RunCached(cache, ".", patterns, analyzers, times)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = d
		mode := ""
		if stats.FastPath {
			mode = " (metadata only, no type-check)"
		}
		fmt.Fprintf(stderr, "meccvet: cache: %d/%d packages warm%s\n", stats.Warm, stats.Roots, mode)
	} else {
		pkgs, err := analysis.Load(".", patterns...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		diags = analysis.RunTimed(analysis.Roots(pkgs), analyzers, times)
	}
	if *timings {
		names := make([]string, 0, len(times))
		for n := range times {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return times[names[i]] > times[names[j]] })
		for _, n := range names {
			fmt.Fprintf(stderr, "meccvet: timing %-14s %s\n", n, times[n].Round(time.Microsecond))
		}
	}
	cwd, _ := os.Getwd()
	findings := analysis.Findings(diags, cwd)

	if *writeBase {
		f, err := os.Create(*basePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		werr := analysis.NewBaseline(findings).Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 2
		}
		fmt.Fprintf(stderr, "meccvet: baseline %s accepts %d finding(s)\n", *basePath, len(findings))
		return 0
	}

	if baseline != nil {
		findings = baseline.Filter(findings)
	}

	var out io.Writer = stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "json":
		if err := analysis.WriteJSON(out, findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(out, findings, analyzers); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		what := "finding(s)"
		if *basePath != "" {
			what = "new finding(s) not in baseline"
		}
		fmt.Fprintf(stderr, "meccvet: %d %s\n", len(findings), what)
		return 1
	}
	return 0
}
