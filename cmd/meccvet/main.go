// Command meccvet is the project's static-analysis multichecker: six
// analyzers that pin the simulator's compile-time invariants —
// deterministic replay, the zero-allocation hot path, nil-safe
// telemetry hooks, unit-safe clock conversions, documented panics, and
// sentinel-error wrapping. Run it over the module with
//
//	go run ./cmd/meccvet ./...
//
// (or `make lint`). It exits non-zero on any diagnostic; suppress an
// individual finding with a `//meccvet:allow <analyzer> -- reason`
// comment on or directly above the offending line. See DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run drives the multichecker; split from main so cmd tests can invoke
// it in-process.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("meccvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var names []string
	if *only != "" {
		names = strings.Split(*only, ",")
	}
	analyzers, err := analysis.Select(names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := analysis.Run(analysis.Roots(pkgs), analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "meccvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
