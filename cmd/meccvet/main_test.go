package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the checker with stdout/stderr redirected to temp files
// and returns the exit code plus both streams.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	mk := func(name string) *os.File {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	stdout, stderr := mk("stdout"), mk("stderr")
	defer stdout.Close()
	defer stderr.Close()
	code := run(args, stdout, stderr)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	return code, read(stdout), read(stderr)
}

// seedFixture is a fixture package with known seedflow findings.
const seedFixture = "../../internal/analysis/testdata/src/seed"

func TestListCoversAllAnalyzers(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 17 {
		t.Fatalf("-list printed %d analyzers, want 17:\n%s", len(lines), out)
	}
	for _, name := range []string{"concsafety", "seedflow", "hotclosure", "unitflow", "atomicfield", "seqlock", "cyclewrap", "hotescape", "lockorder", "goleak", "chandiscipline"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}

func TestJSONFormat(t *testing.T) {
	code, out, _ := capture(t, "-run", "seedflow", "-format", "json", seedFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has findings)", code)
	}
	var rep struct {
		Version  int `json:"version"`
		Findings []struct {
			File     string `json:"file"`
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-format json output is not valid JSON: %v\n%s", err, out)
	}
	if rep.Version != 1 || len(rep.Findings) == 0 {
		t.Fatalf("report = %+v, want version 1 with findings", rep)
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "seedflow" {
			t.Errorf("finding from %s leaked through -run seedflow", f.Analyzer)
		}
	}
}

func TestSARIFFormat(t *testing.T) {
	code, out, _ := capture(t, "-run", "seedflow", "-format", "sarif", seedFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var log map[string]any
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("-format sarif output is not valid JSON: %v", err)
	}
	if log["version"] != "2.1.0" {
		t.Fatalf("SARIF version = %v", log["version"])
	}
}

// TestBaselineFlow exercises the CI loop: accept the current findings
// with -write-baseline, then verify the next run is clean against it.
func TestBaselineFlow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline.json")

	code, _, stderr := capture(t, "-run", "seedflow", "-baseline", base, "-write-baseline", seedFixture)
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	code, out, _ := capture(t, "-run", "seedflow", "-baseline", base, seedFixture)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; new findings:\n%s", code, out)
	}

	// Without the baseline the same findings fail the run.
	code, _, _ = capture(t, "-run", "seedflow", seedFixture)
	if code != 1 {
		t.Fatalf("unbaselined run exit = %d, want 1", code)
	}
}

// TestCacheGolden pins the fact-cache contract end to end: a cold run
// populates the cache, the warm run replays from metadata alone, and
// the rendered findings are byte-identical between the two.
func TestCacheGolden(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "factcache")

	coldCode, coldOut, coldErr := capture(t, "-run", "seedflow", "-cache-dir", dir, seedFixture)
	if coldCode != 1 {
		t.Fatalf("cold exit = %d, want 1 (stderr: %s)", coldCode, coldErr)
	}
	if !strings.Contains(coldErr, "cache: 0/1 packages warm") {
		t.Fatalf("cold run stderr missing cache stats: %s", coldErr)
	}

	warmCode, warmOut, warmErr := capture(t, "-run", "seedflow", "-cache-dir", dir, seedFixture)
	if warmCode != coldCode {
		t.Fatalf("warm exit = %d, cold = %d", warmCode, coldCode)
	}
	if warmOut != coldOut {
		t.Errorf("warm findings differ from cold:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	if !strings.Contains(warmErr, "cache: 1/1 packages warm (metadata only, no type-check)") {
		t.Fatalf("warm run did not take the fast path: %s", warmErr)
	}
}

// TestTimings checks -timings prints an attribution line per analyzer.
func TestTimings(t *testing.T) {
	code, _, stderr := capture(t, "-run", "seedflow", "-timings", seedFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for _, want := range []string{"meccvet: timing seedflow", "meccvet: timing program"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("-timings stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if code, _, _ := capture(t, "-format", "yaml"); code != 2 {
		t.Fatalf("-format yaml exit = %d, want 2", code)
	}
	if code, _, _ := capture(t, "-write-baseline"); code != 2 {
		t.Fatalf("-write-baseline without -baseline exit = %d, want 2", code)
	}
	if code, _, _ := capture(t, "-run", "nope"); code != 2 {
		t.Fatalf("-run nope exit = %d, want 2", code)
	}
}

// TestMissingBaselineFails pins the guard against a mistyped -baseline
// path: the run must fail fast (before any analysis) rather than
// silently running unbaselined and passing.
func TestMissingBaselineFails(t *testing.T) {
	absent := filepath.Join(t.TempDir(), "no-such-baseline.json")
	code, _, stderr := capture(t, "-baseline", absent, seedFixture)
	if code != 2 {
		t.Fatalf("missing -baseline file exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "does not exist") {
		t.Fatalf("stderr does not name the missing baseline: %s", stderr)
	}
}
