// Command benchjson runs the hot-path micro-benchmarks and the Fig. 7
// end-to-end exhibit under testing.Benchmark and emits the results as
// machine-readable JSON (see `make bench-json`, which writes
// BENCH_baseline.json). Each entry records ns/op and allocs/op so
// regressions in either time or allocation behaviour are diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/bch"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/line"
	"repro/internal/memdata"
	"repro/internal/sched"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the full JSON document.
type Report struct {
	Unit       string  `json:"unit"`
	Benchmarks []Entry `json:"benchmarks"`
	// Fig7Seconds is the wall-clock of the Fig. 7 end-to-end exhibit at
	// the given scale/seed — the macro number the micro-benchmarks roll
	// up into.
	Fig7Seconds float64 `json:"fig7_seconds"`
	Fig7Scale   int     `json:"fig7_scale"`
	Fig7Seed    int64   `json:"fig7_seed"`
	// PriorDecodeT6 records the pre-optimization BenchmarkDecodeT6
	// numbers captured before the fused zero-allocation decode landed,
	// so the speedup is auditable from this file alone.
	PriorDecodeT6 Entry `json:"prior_decode_t6"`
}

func randomLine(rng *rand.Rand) line.Line {
	var l line.Line
	for w := range l {
		l[w] = rng.Uint64()
	}
	return l
}

func run() error {
	var (
		scale   = flag.Int("scale", 400, "fig7 scale divisor")
		seed    = flag.Int64("seed", 1, "fig7 workload seed")
		compare = flag.String("compare", "", "path to a previous benchjson report: print per-benchmark deltas to stderr and exit nonzero on a >10% time regression")
	)
	flag.Parse()

	code, err := bch.NewExtended(6)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	data := randomLine(rng)
	parity := code.Encode(data)

	// Corrupt a copy with t=6 errors for the worst-case decode.
	bad := data
	for _, pos := range rand.New(rand.NewSource(31)).Perm(line.Bits)[:6] {
		bad = bad.FlipBit(pos)
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"DecodeClean", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = code.Decode(data, parity)
			}
		}},
		{"DecodeT6", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = code.Decode(bad, parity)
			}
		}},
		{"EncodeECC6", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = code.Encode(data)
			}
		}},
		{"UpgradeSweep", benchUpgradeSweep},
		{"SyndromeScreenBatch", benchSyndromeScreenBatch},
		{"EventWheel", benchEventWheel},
	}

	rep := Report{
		Unit:      "ns",
		Fig7Scale: *scale,
		Fig7Seed:  *seed,
		// Captured on this machine immediately before the fused decode
		// rework (git history has the exact tree).
		PriorDecodeT6: Entry{Name: "DecodeT6", NsPerOp: 25321, AllocsPerOp: 14, BytesPerOp: 424},
	}
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		rep.Benchmarks = append(rep.Benchmarks, Entry{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	if err := opts.Validate(); err != nil {
		return err
	}
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := experiments.Fig7(suite); err != nil {
		return err
	}
	rep.Fig7Seconds = time.Since(start).Seconds()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if *compare != "" {
		old, err := loadReport(*compare)
		if err != nil {
			return err
		}
		if diffReports(os.Stderr, old, rep) {
			return fmt.Errorf("time regression >%.0f%% vs %s", regressionPct, *compare)
		}
	}
	return nil
}

// regressionPct is the per-benchmark slowdown beyond which -compare
// fails the run.
const regressionPct = 10.0

// loadReport reads a previous benchjson document.
func loadReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// diffReports prints per-benchmark deltas of cur against old and reports
// whether any shared benchmark (or the Fig. 7 wall time) got more than
// regressionPct slower. New or vanished benchmarks are noted but never
// fail the comparison.
func diffReports(w io.Writer, old, cur Report) bool {
	prev := make(map[string]Entry, len(old.Benchmarks))
	for _, e := range old.Benchmarks {
		prev[e.Name] = e
	}
	regressed := false
	fmt.Fprintf(w, "%-22s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, e := range cur.Benchmarks {
		o, ok := prev[e.Name]
		if !ok {
			fmt.Fprintf(w, "%-22s %14s %14.1f %9s\n", e.Name, "-", e.NsPerOp, "new")
			continue
		}
		delete(prev, e.Name)
		pct := (e.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		mark := ""
		if pct > regressionPct {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-22s %14.1f %14.1f %+8.1f%%%s\n", e.Name, o.NsPerOp, e.NsPerOp, pct, mark)
		if e.AllocsPerOp > o.AllocsPerOp {
			fmt.Fprintf(w, "%-22s allocs/op %d -> %d\n", "", o.AllocsPerOp, e.AllocsPerOp)
		}
	}
	for name := range prev {
		fmt.Fprintf(w, "%-22s %14.1f %14s %9s\n", name, prev[name].NsPerOp, "-", "gone")
	}
	if old.Fig7Seconds > 0 && cur.Fig7Seconds > 0 {
		pct := (cur.Fig7Seconds - old.Fig7Seconds) / old.Fig7Seconds * 100
		mark := ""
		if pct > regressionPct {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-22s %13.2fs %13.2fs %+8.1f%%%s\n", "Fig7", old.Fig7Seconds, cur.Fig7Seconds, pct, mark)
	}
	return regressed
}

// benchUpgradeSweep mirrors internal/memdata's BenchmarkUpgradeSweep:
// downgrade every line of an 8K-line memory, then time the batched
// EnterIdle upgrade sweep.
func benchUpgradeSweep(b *testing.B) {
	const lines = 8192
	cfg := core.DefaultConfig(lines)
	mem, err := memdata.New(lines, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	contents := make([]line.Line, lines)
	for i := range contents {
		contents[i] = randomLine(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := mem.ExitIdle(0); err != nil {
			b.Fatal(err)
		}
		for a := uint64(0); a < lines; a++ {
			if err := mem.Write(a, contents[a], 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := mem.EnterIdle(0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSyndromeScreenBatch mirrors internal/bch's
// BenchmarkSyndromeScreenBatch: word-sliced clean-screen over a 1K-line
// batch (ns/op covers the whole batch).
func benchSyndromeScreenBatch(b *testing.B) {
	c, err := bch.NewExtended(6)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	const n = 1024
	datas := make([]line.Line, n)
	parities := make([]uint64, n)
	for i := range datas {
		datas[i] = randomLine(rng)
	}
	c.EncodeBatch(datas, parities)
	clean := make([]bool, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SyndromeScreenBatch(datas, parities, clean)
	}
}

// benchEventWheel mirrors internal/sched's BenchmarkEventWheel: the
// controller's schedule/advance/pop cadence on a three-event wheel.
func benchEventWheel(b *testing.B) {
	w := sched.NewWheel(0, 8)
	var now uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Schedule(0, now+1560)
		w.Schedule(1, now+42)
		w.Schedule(2, now+3)
		next, _ := w.Next()
		now = next
		w.Advance(now)
		for {
			if _, ok := w.PopDue(); !ok {
				break
			}
		}
		w.Cancel(0)
		w.Cancel(1)
	}
}

func main() {
	testing.Init()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
