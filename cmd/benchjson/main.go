// Command benchjson runs the hot-path micro-benchmarks and the Fig. 7
// end-to-end exhibit under testing.Benchmark and emits the results as
// machine-readable JSON (see `make bench-json`, which writes
// BENCH_baseline.json). Each entry records ns/op and allocs/op so
// regressions in either time or allocation behaviour are diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/bch"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/line"
	"repro/internal/memdata"
)

// Entry is one benchmark result.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Report is the full JSON document.
type Report struct {
	Unit       string  `json:"unit"`
	Benchmarks []Entry `json:"benchmarks"`
	// Fig7Seconds is the wall-clock of the Fig. 7 end-to-end exhibit at
	// the given scale/seed — the macro number the micro-benchmarks roll
	// up into.
	Fig7Seconds float64 `json:"fig7_seconds"`
	Fig7Scale   int     `json:"fig7_scale"`
	Fig7Seed    int64   `json:"fig7_seed"`
	// PriorDecodeT6 records the pre-optimization BenchmarkDecodeT6
	// numbers captured before the fused zero-allocation decode landed,
	// so the speedup is auditable from this file alone.
	PriorDecodeT6 Entry `json:"prior_decode_t6"`
}

func randomLine(rng *rand.Rand) line.Line {
	var l line.Line
	for w := range l {
		l[w] = rng.Uint64()
	}
	return l
}

func run() error {
	var (
		scale = flag.Int("scale", 400, "fig7 scale divisor")
		seed  = flag.Int64("seed", 1, "fig7 workload seed")
	)
	flag.Parse()

	code, err := bch.NewExtended(6)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	data := randomLine(rng)
	parity := code.Encode(data)

	// Corrupt a copy with t=6 errors for the worst-case decode.
	bad := data
	for _, pos := range rand.New(rand.NewSource(31)).Perm(line.Bits)[:6] {
		bad = bad.FlipBit(pos)
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"DecodeClean", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = code.Decode(data, parity)
			}
		}},
		{"DecodeT6", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _ = code.Decode(bad, parity)
			}
		}},
		{"EncodeECC6", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = code.Encode(data)
			}
		}},
		{"UpgradeSweep", benchUpgradeSweep},
	}

	rep := Report{
		Unit:      "ns",
		Fig7Scale: *scale,
		Fig7Seed:  *seed,
		// Captured on this machine immediately before the fused decode
		// rework (git history has the exact tree).
		PriorDecodeT6: Entry{Name: "DecodeT6", NsPerOp: 25321, AllocsPerOp: 14, BytesPerOp: 424},
	}
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		rep.Benchmarks = append(rep.Benchmarks, Entry{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed}
	if err := opts.Validate(); err != nil {
		return err
	}
	suite, err := experiments.NewSuite(opts)
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := experiments.Fig7(suite); err != nil {
		return err
	}
	rep.Fig7Seconds = time.Since(start).Seconds()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// benchUpgradeSweep mirrors internal/memdata's BenchmarkUpgradeSweep:
// downgrade every line of an 8K-line memory, then time the batched
// EnterIdle upgrade sweep.
func benchUpgradeSweep(b *testing.B) {
	const lines = 8192
	cfg := core.DefaultConfig(lines)
	mem, err := memdata.New(lines, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	contents := make([]line.Line, lines)
	for i := range contents {
		contents[i] = randomLine(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := mem.ExitIdle(0); err != nil {
			b.Fatal(err)
		}
		for a := uint64(0); a < lines; a++ {
			if err := mem.Write(a, contents[a], 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := mem.EnterIdle(0); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	testing.Init()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
