package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"testing"
)

// runMain invokes run() with a fresh flag set and the given arguments,
// capturing stdout.
func runMain(t *testing.T, args ...string) string {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	os.Args = append([]string{"benchjson"}, args...)
	flag.CommandLine = flag.NewFlagSet("benchjson", flag.PanicOnError)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	os.Args, flag.CommandLine = oldArgs, oldFlags
	out := <-outc
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

// TestSmoke runs the benchmark report at a tiny Fig. 7 scale and checks
// the JSON document shape, including the zero-allocation guarantee the
// report exists to track. Skipped in -short mode: testing.Benchmark
// needs about a second per entry.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks take ~1s each")
	}
	out := runMain(t, "-scale", "40000", "-seed", "1")
	var rep Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(rep.Benchmarks) < 4 {
		t.Fatalf("only %d benchmark entries", len(rep.Benchmarks))
	}
	seen := map[string]Entry{}
	for _, e := range rep.Benchmarks {
		if e.Iterations == 0 {
			t.Errorf("%s ran zero iterations", e.Name)
		}
		seen[e.Name] = e
	}
	if e, ok := seen["DecodeT6"]; !ok {
		t.Error("DecodeT6 entry missing")
	} else if e.AllocsPerOp != 0 {
		t.Errorf("DecodeT6 allocates %d/op, want 0", e.AllocsPerOp)
	}
	if rep.Fig7Seconds <= 0 {
		t.Error("Fig7 exhibit did not run")
	}
}

// TestDiffReports exercises the -compare delta logic without running
// real benchmarks: only a shared benchmark (or the Fig. 7 wall time)
// slowing down by more than regressionPct fails the comparison.
func TestDiffReports(t *testing.T) {
	old := Report{
		Benchmarks: []Entry{
			{Name: "A", NsPerOp: 100},
			{Name: "B", NsPerOp: 100},
			{Name: "Gone", NsPerOp: 50},
		},
		Fig7Seconds: 10,
	}
	cases := []struct {
		name string
		cur  Report
		want bool
	}{
		{"improvement", Report{Benchmarks: []Entry{{Name: "A", NsPerOp: 50}, {Name: "B", NsPerOp: 100}}, Fig7Seconds: 5}, false},
		{"within-tolerance", Report{Benchmarks: []Entry{{Name: "A", NsPerOp: 109}, {Name: "B", NsPerOp: 100}}, Fig7Seconds: 10.9}, false},
		{"bench-regression", Report{Benchmarks: []Entry{{Name: "A", NsPerOp: 120}, {Name: "B", NsPerOp: 100}}, Fig7Seconds: 10}, true},
		{"fig7-regression", Report{Benchmarks: []Entry{{Name: "A", NsPerOp: 100}, {Name: "B", NsPerOp: 100}}, Fig7Seconds: 12}, true},
		{"new-entry-ignored", Report{Benchmarks: []Entry{{Name: "A", NsPerOp: 100}, {Name: "New", NsPerOp: 9999}}, Fig7Seconds: 10}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := diffReports(io.Discard, old, tc.cur); got != tc.want {
				t.Errorf("diffReports = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestLoadReportRoundTrip writes a report and loads it back.
func TestLoadReportRoundTrip(t *testing.T) {
	rep := Report{Unit: "ns", Benchmarks: []Entry{{Name: "A", NsPerOp: 42}}, Fig7Seconds: 1.5}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/old.json"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 42 || got.Fig7Seconds != 1.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := loadReport(t.TempDir() + "/missing.json"); err == nil {
		t.Error("want error for missing file")
	}
}
