package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runMeccscn invokes run() with the given arguments, capturing stdout
// and stderr separately and returning them with the exit code.
func runMeccscn(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	capture := func(f **os.File) (restore func() string) {
		old := *f
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		*f = w
		ch := make(chan string)
		go func() {
			b, _ := io.ReadAll(r)
			ch <- string(b)
		}()
		return func() string {
			w.Close()
			*f = old
			return <-ch
		}
	}
	restoreOut := capture(&os.Stdout)
	restoreErr := capture(&os.Stderr)
	code = run(args)
	stdout = restoreOut()
	stderr = restoreErr()
	return stdout, stderr, code
}

func checkGolden(t *testing.T, got, golden string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestValidateMalformedGolden pins the validate subcommand's error
// message for each malformed-spec class — unknown field, bad phase
// ordering, invariant referencing a missing metric, negative duration,
// duplicate scenario name. The message is user interface: it must name
// the file, the offending phase or field, and the rule.
func TestValidateMalformedGolden(t *testing.T) {
	cases := []struct {
		name  string
		files []string
	}{
		{"unknown-field", []string{"unknown-field.json"}},
		{"bad-phase-ordering", []string{"bad-phase-ordering.json"}},
		{"missing-metric", []string{"missing-metric.json"}},
		{"negative-duration", []string{"negative-duration.json"}},
		{"duplicate-name", []string{"duplicate-a.json", "duplicate-b.json"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := []string{"validate"}
			for _, f := range tc.files {
				args = append(args, filepath.Join("testdata", "malformed", f))
			}
			_, stderr, code := runMeccscn(t, args...)
			if code != 1 {
				t.Errorf("exit code = %d, want 1", code)
			}
			checkGolden(t, stderr, filepath.Join("testdata", tc.name+".golden"))
		})
	}
}

// TestValidateBuiltinSpecsOnDisk validates the committed spec directory
// through the CLI path (LoadDir), not just the embedded copies.
func TestValidateBuiltinSpecsOnDisk(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "scenario", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"validate"}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			args = append(args, filepath.Join(dir, e.Name()))
		}
	}
	stdout, stderr, code := runMeccscn(t, args...)
	if code != 0 {
		t.Fatalf("validate failed (%d):\n%s%s", code, stdout, stderr)
	}
}

// TestListAndMetrics smoke-tests the list subcommand.
func TestListAndMetrics(t *testing.T) {
	stdout, _, code := runMeccscn(t, "list")
	if code != 0 {
		t.Fatalf("list exit %d", code)
	}
	for _, want := range []string{"fig1-idle-pattern", "fault-storm", "[short]"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("list output missing %q", want)
		}
	}
	stdout, _, code = runMeccscn(t, "list", "-metrics")
	if code != 0 {
		t.Fatalf("list -metrics exit %d", code)
	}
	if !strings.Contains(stdout, "mecc.sweeps") || !strings.Contains(stdout, "uncorrectable_prob") {
		t.Errorf("metric list incomplete:\n%s", stdout)
	}
}

// TestRunShortSubset runs the short built-in subset end-to-end through
// the CLI, including JSONL output.
func TestRunShortSubset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.jsonl")
	stdout, stderr, code := runMeccscn(t, "run", "-short", "-workers", "2", "-out", out)
	if code != 0 {
		t.Fatalf("run -short exit %d:\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "scenarios passed") {
		t.Errorf("missing summary line:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"rec":"summary"`) {
		t.Errorf("JSONL missing summary record")
	}
}

// TestRunUnknownScenarioRegex exercises the empty-selection path.
func TestRunUnknownScenarioRegex(t *testing.T) {
	_, stderr, code := runMeccscn(t, "run", "-run", "no-such-scenario")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr, "no scenarios selected") {
		t.Errorf("stderr = %q", stderr)
	}
}
