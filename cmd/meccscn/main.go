// Command meccscn runs declarative simulation scenarios
// (internal/scenario): multi-phase device usage patterns with declared
// invariants, evaluated black-box against the simulator.
//
// Subcommands:
//
//	meccscn list [-metrics]          list built-in scenarios (or metric names)
//	meccscn validate FILE...         validate spec files, print errors
//	meccscn run [flags] [FILE...]    run scenarios and report pass/fail
//
// run flags:
//
//	-specs DIR     load *.json specs from DIR instead of the built-ins
//	-run REGEX     only scenarios whose name matches
//	-short         only scenarios marked "short" (the PR-level subset)
//	-workers N     concurrent scenarios (default 1; results identical)
//	-legacy        use the per-cycle legacy scheduler
//	-no-check      skip run-time invariant checkers
//	-out FILE      write JSONL outcomes ("-" for stdout)
//	-trace-out F   write an obs event trace (JSONL)
//	-v             print per-invariant detail
//
// Exit status: 0 when every selected scenario passes, 1 on any failure
// or invalid spec.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"repro/internal/obs"
	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 1
	}
	switch args[0] {
	case "list":
		return cmdList(args[1:])
	case "validate":
		return cmdValidate(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "meccscn: unknown subcommand %q\n", args[0])
		usage()
		return 1
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: meccscn <list|validate|run> [flags]")
	fmt.Fprintln(os.Stderr, "  list [-metrics]        list built-in scenarios or valid metric names")
	fmt.Fprintln(os.Stderr, "  validate FILE...       validate scenario spec files")
	fmt.Fprintln(os.Stderr, "  run [flags] [FILE...]  run scenarios (built-ins by default)")
}

func cmdList(args []string) int {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	metrics := fs.Bool("metrics", false, "list valid metric names instead of scenarios")
	specsDir := fs.String("specs", "", "list specs from this directory instead of the built-ins")
	fs.Parse(args)
	if *metrics {
		for _, name := range scenario.MetricNames() {
			fmt.Println(name)
		}
		return 0
	}
	specs, err := loadSpecs(*specsDir, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
		return 1
	}
	for _, s := range specs {
		tag := ""
		if s.Short {
			tag = " [short]"
		}
		fmt.Printf("%-22s%s %s\n", s.Name, tag, s.Description)
	}
	return 0
}

func cmdValidate(args []string) int {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "meccscn validate: no spec files given")
		return 1
	}
	bad := 0
	var specs []scenario.Spec
	for _, f := range files {
		s, err := scenario.LoadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
			bad++
			continue
		}
		specs = append(specs, s)
		fmt.Printf("%s: ok (%s)\n", f, s.Name)
	}
	if err := scenario.ValidateSet(specs); err != nil {
		fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
		bad++
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// loadSpecs resolves the spec source: explicit files > directory >
// built-ins.
func loadSpecs(dir string, files []string) ([]scenario.Spec, error) {
	if len(files) > 0 {
		var specs []scenario.Spec
		for _, f := range files {
			s, err := scenario.LoadFile(f)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
		if err := scenario.ValidateSet(specs); err != nil {
			return nil, err
		}
		return specs, nil
	}
	if dir != "" {
		return scenario.LoadDir(dir)
	}
	return scenario.Builtin()
}

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specsDir := fs.String("specs", "", "load *.json specs from this directory instead of the built-ins")
	runRE := fs.String("run", "", "only scenarios whose name matches this regexp")
	short := fs.Bool("short", false, "only scenarios marked short (the PR-level subset)")
	workers := fs.Int("workers", 1, "concurrent scenarios")
	legacy := fs.Bool("legacy", false, "use the per-cycle legacy scheduler")
	noCheck := fs.Bool("no-check", false, "skip run-time invariant checkers")
	out := fs.String("out", "", "write JSONL outcomes to this file (- for stdout)")
	traceOut := fs.String("trace-out", "", "write an obs event trace (JSONL) to this file")
	verbose := fs.Bool("v", false, "print per-invariant detail")
	fs.Parse(args)

	specs, err := loadSpecs(*specsDir, fs.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
		return 1
	}
	if *runRE != "" {
		re, err := regexp.Compile(*runRE)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meccscn: bad -run regexp: %v\n", err)
			return 1
		}
		var kept []scenario.Spec
		for _, s := range specs {
			if re.MatchString(s.Name) {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	if *short {
		var kept []scenario.Spec
		for _, s := range specs {
			if s.Short {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "meccscn: no scenarios selected")
		return 0
	}

	opts := scenario.Options{NoCheck: *noCheck, LegacyStepping: *legacy}
	var elog *obs.EventLog
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
			return 1
		}
		defer traceFile.Close()
		elog = obs.NewEventLog()
		elog.SetStream(traceFile)
		rec := obs.New()
		rec.SetEventLog(elog)
		opts.Obs = rec
	}

	outcomes, err := scenario.RunSet(specs, opts, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
		return 1
	}
	if elog != nil {
		if err := elog.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "meccscn: trace flush: %v\n", err)
		}
	}

	failed := 0
	for _, o := range outcomes {
		status := "PASS"
		if !o.Passed {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %s (%s, %d phases, uncorrectable %.3g)\n",
			status, o.Name, o.Scheme, len(o.Phases), o.UncorrectableProb)
		for _, inv := range o.Invariants {
			if !inv.OK || *verbose {
				mark := "ok"
				if !inv.OK {
					mark = "FAIL"
				}
				detail := inv.Detail
				if detail != "" {
					detail = " — " + detail
				}
				fmt.Printf("  %-4s %s%s\n", mark, inv.Desc, detail)
			}
		}
		if !o.Passed {
			for _, v := range o.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
		}
	}
	fmt.Printf("%d/%d scenarios passed\n", len(outcomes)-failed, len(outcomes))

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := scenario.WriteJSONL(w, outcomes); err != nil {
			fmt.Fprintf(os.Stderr, "meccscn: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
