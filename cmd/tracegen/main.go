// Command tracegen materializes synthetic workload traces in the text or
// binary format of internal/trace, optionally filtering raw accesses
// through the 1 MB LLC model first.
//
// Usage:
//
//	tracegen -bench gcc -instructions 1000000 -o gcc.trace [-format bin]
//	         [-scale 1] [-seed 1] [-summary]
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bench    = flag.String("bench", "gcc", "benchmark name")
		instrs   = flag.Int64("instructions", 1_000_000, "instruction budget")
		out      = flag.String("o", "", "output file (default stdout)")
		format   = flag.String("format", "text", "text | bin")
		scale    = flag.Int("scale", 1, "profile scale divisor")
		seed     = flag.Int64("seed", 1, "generator seed")
		summary  = flag.Bool("summary", false, "print trace statistics to stderr")
		llcBytes = flag.Int("cache", 0, "filter the stream through an LLC of this size (bytes, 0 = off)")
		gz       = flag.Bool("gz", false, "gzip-compress the output")
	)
	flag.Parse()

	prof, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	if *scale > 1 {
		prof = prof.Scaled(*scale)
	}
	cfg := dram.DefaultConfig()
	gen, err := workload.NewGenerator(prof, cfg.TotalLines(), *seed)
	if err != nil {
		return err
	}
	var src trace.Source = workload.NewBounded(gen, *instrs)
	if *llcBytes > 0 {
		llc, err := cache.New(*llcBytes, cfg.LineBytes, 8)
		if err != nil {
			return fmt.Errorf("build cache: %w", err)
		}
		src = trace.NewCacheFilter(src, llc)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer func() {
			if cerr := w.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tracegen: close:", cerr)
			}
		}()
	}

	if *summary {
		// Materialize so the stream can be both summarized and written.
		var recs []trace.Record
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			recs = append(recs, r)
		}
		s := trace.Summarize(trace.NewSliceSource(recs))
		fmt.Fprintf(os.Stderr, "records=%d reads=%d writes=%d MPKI=%.2f footprint=%.1fMB\n",
			s.Records, s.Reads, s.Writes, s.MPKI(),
			float64(s.FootprintBytes(cfg.LineBytes))/(1<<20))
		src = trace.NewSliceSource(recs)
	}

	var sink io.Writer = w
	if *gz {
		zw := gzip.NewWriter(w)
		defer func() {
			if cerr := zw.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tracegen: close gzip:", cerr)
			}
		}()
		sink = zw
	}
	switch *format {
	case "text":
		return trace.WriteText(sink, src)
	case "bin":
		return trace.WriteBinary(sink, src)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
