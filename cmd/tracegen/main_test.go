package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// runMain invokes run() with a fresh flag set and the given arguments,
// capturing stdout.
func runMain(t *testing.T, args ...string) string {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	os.Args = append([]string{"tracegen"}, args...)
	flag.CommandLine = flag.NewFlagSet("tracegen", flag.PanicOnError)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	os.Args, flag.CommandLine = oldArgs, oldFlags
	out := <-outc
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

func TestSmokeTextToStdout(t *testing.T) {
	out := runMain(t, "-bench", "gcc", "-instructions", "2000", "-seed", "1")
	recs, err := trace.ReadText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("output is not a valid text trace: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("empty trace")
	}
}

func TestSmokeBinaryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.bin")
	runMain(t, "-bench", "libq", "-instructions", "2000", "-format", "bin", "-o", path)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	br, err := trace.NewBinaryReader(f)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := br.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("empty binary trace")
	}
}
