// Command obsdump pretty-prints a JSONL event trace produced by
// meccsim/paperbench -trace-out: one aligned line per event, with the
// per-kind fields spelled out, followed by a per-kind census.
//
// Usage:
//
//	obsdump [-kinds dram_cmd,refresh,...] [-n MAX] [trace.jsonl]
//
// With no file argument (or "-") the trace is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kinds  = flag.String("kinds", "all", "event kinds to print: all, or a comma list")
		maxN   = flag.Int("n", 0, "print at most N events (0 = all)")
		census = flag.Bool("census", true, "append a per-kind event census")
	)
	flag.Parse()

	mask, err := obs.ParseKindMask(*kinds)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		return fmt.Errorf("at most one trace file expected")
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := obs.ReadJSONL(in)
	if err != nil {
		return err
	}

	counts := map[obs.Kind]uint64{}
	printed := 0
	for _, e := range events {
		counts[e.Kind]++
		if !mask.Has(e.Kind) {
			continue
		}
		if *maxN > 0 && printed >= *maxN {
			continue
		}
		printed++
		fmt.Printf("%12d  %-15s %s\n", e.T, e.Kind, detail(e))
	}
	if *census && len(events) > 0 {
		bc := stats.NewBarChart(40)
		for _, k := range obs.Kinds() {
			if counts[k] > 0 {
				bc.Add(k.String(), "", float64(counts[k]))
			}
		}
		fmt.Printf("\n%d events:\n%s", len(events), bc.String())
	}
	return nil
}

// detail renders an event's kind-specific fields.
func detail(e obs.Event) string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	switch e.Kind {
	case obs.KindDRAMCmd:
		add("%s bank=%d row=%d", e.Cmd, e.Bank, e.Row)
	case obs.KindRefresh:
		if e.Bank != 0 {
			add("bank=%d", e.Bank)
		}
		add("shift=%d", e.Shift)
	case obs.KindRefreshRate:
		add("shift=%d (refresh interval x%d)", e.Shift, 1<<e.Shift)
	case obs.KindMECCTransition:
		add("phase=%s", e.Phase)
	case obs.KindSweepStart:
		add("regions=%d", e.Regions)
	case obs.KindSweepEnd:
		add("lines=%d regions=%d cycles=%d", e.Lines, e.Regions, e.Cycles)
	case obs.KindSMDWindow, obs.KindSMDEnable:
		add("mpkc=%.3f", e.MPKC)
	case obs.KindSMDDisable:
	case obs.KindMDTMark:
		add("region=%d", e.Region)
	case obs.KindDecode:
		add("cycles=%d strong=%v", e.Cycles, e.Strong)
	}
	return strings.Join(parts, " ")
}
