// Command obsdump pretty-prints a JSONL event trace produced by
// meccsim/paperbench -trace-out (or a flight-recorder dump): one
// aligned line per event with the per-kind fields spelled out, followed
// by a per-kind census and, when the trace contains span events, a
// hierarchical per-phase latency summary stitched from the
// span_start/span_end pairs.
//
// Usage:
//
//	obsdump [-format text|json] [-kinds dram_cmd,refresh,...] [-n MAX]
//	        [trace.jsonl]
//
// With no file argument (or "-") the trace is read from stdin.
// -format json emits one machine-readable document (census, span
// summary, and the filtered events) instead of the text rendering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kinds  = flag.String("kinds", "all", "event kinds to print: all, or a comma list")
		maxN   = flag.Int("n", 0, "print at most N events (0 = all)")
		census = flag.Bool("census", true, "append a per-kind event census")
		format = flag.String("format", "text", "output format: text | json")
	)
	flag.Parse()

	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	mask, err := obs.ParseKindMask(*kinds)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		return fmt.Errorf("at most one trace file expected")
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := obs.ReadJSONL(in)
	if err != nil {
		return err
	}

	counts := map[obs.Kind]uint64{}
	var listed []obs.Event
	for _, e := range events {
		counts[e.Kind]++
		if !mask.Has(e.Kind) {
			continue
		}
		if *maxN > 0 && len(listed) >= *maxN {
			continue
		}
		listed = append(listed, e)
	}
	spans := summarizeSpans(events)

	if *format == "json" {
		return writeJSON(os.Stdout, events, listed, counts, spans, *census)
	}

	for _, e := range listed {
		fmt.Printf("%12d  %-15s %s\n", e.T, e.Kind, detail(e))
	}
	if *census && len(events) > 0 {
		bc := stats.NewBarChart(40)
		for _, k := range obs.Kinds() {
			if counts[k] > 0 {
				bc.Add(k.String(), "", float64(counts[k]))
			}
		}
		fmt.Printf("\n%d events:\n%s", len(events), bc.String())
	}
	if len(spans) > 0 {
		fmt.Printf("\nspan latency (emitter clock units):\n")
		fmt.Print(renderSpanTree(spans))
	}
	return nil
}

// jsonReport is the -format json document: the census and span summary
// computed over the whole trace, plus the events that passed the
// -kinds / -n filters.
type jsonReport struct {
	TotalEvents int               `json:"total_events"`
	Census      map[string]uint64 `json:"census,omitempty"`
	Spans       []spanStat        `json:"spans,omitempty"`
	Events      []obs.Event       `json:"events"`
}

// writeJSON emits the machine-readable rendering.
func writeJSON(w io.Writer, events, listed []obs.Event, counts map[obs.Kind]uint64, spans []spanStat, census bool) error {
	rep := jsonReport{TotalEvents: len(events), Spans: spans, Events: listed}
	if rep.Events == nil {
		rep.Events = []obs.Event{}
	}
	if census {
		rep.Census = make(map[string]uint64, len(counts))
		for k, n := range counts {
			rep.Census[k.String()] = n
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// spanStat aggregates every completed span of one name: how many ran,
// their total/min/max duration, and how many were still open (started,
// never ended) when the trace stopped. Parent is the name of the most
// recently observed parent span, "" for roots.
type spanStat struct {
	Name  string `json:"name"`
	Par   string `json:"parent,omitempty"`
	Count int    `json:"count"`
	Open  int    `json:"open,omitempty"`
	Total uint64 `json:"total"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
}

// summarizeSpans stitches span_start/span_end pairs into per-name
// latency aggregates, in first-appearance order. Durations come from
// the end events (Span.End stamps them), so a trace whose ring dropped
// the start events still summarizes; starts contribute the open count
// and the id→name table used to resolve parent names.
func summarizeSpans(events []obs.Event) []spanStat {
	nameOf := map[uint64]string{}
	openIDs := map[uint64]string{}
	idx := map[string]int{}
	var out []spanStat
	at := func(name string) *spanStat {
		i, ok := idx[name]
		if !ok {
			i = len(out)
			idx[name] = i
			out = append(out, spanStat{Name: name})
		}
		return &out[i]
	}
	for _, e := range events {
		switch e.Kind {
		case obs.KindSpanStart:
			nameOf[e.Span] = e.Name
			openIDs[e.Span] = e.Name
			at(e.Name)
		case obs.KindSpanEnd:
			delete(openIDs, e.Span)
			s := at(e.Name)
			if p, ok := nameOf[e.Parent]; ok && e.Parent != 0 {
				s.Par = p
			}
			dur := e.Cycles
			if s.Count == 0 || dur < s.Min {
				s.Min = dur
			}
			if dur > s.Max {
				s.Max = dur
			}
			s.Total += dur
			s.Count++
		}
	}
	for _, name := range openIDs {
		at(name).Open++
	}
	return out
}

// renderSpanTree prints the span aggregates as an indented tree:
// roots first, children nested under the parent name they reported.
func renderSpanTree(spans []spanStat) string {
	children := map[string][]spanStat{}
	for _, s := range spans {
		children[s.Par] = append(children[s.Par], s)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-24s %8s %12s %10s %10s %10s %6s\n",
		"span", "count", "total", "min", "avg", "max", "open")
	seen := map[string]bool{}
	var walk func(parent string, depth int)
	walk = func(parent string, depth int) {
		for _, s := range children[parent] {
			if seen[s.Name] {
				continue
			}
			seen[s.Name] = true
			avg := uint64(0)
			if s.Count > 0 {
				avg = s.Total / uint64(s.Count)
			}
			label := strings.Repeat("  ", depth) + s.Name
			fmt.Fprintf(&b, "  %-24s %8d %12d %10d %10d %10d %6d\n",
				label, s.Count, s.Total, s.Min, avg, s.Max, s.Open)
			walk(s.Name, depth+1)
		}
	}
	walk("", 0)
	// Orphans whose parent name never completed a span of its own
	// (e.g. the parent's events fell off the ring) still print, flat.
	for _, s := range spans {
		if !seen[s.Name] {
			walk(s.Par, 1)
		}
	}
	return b.String()
}

// detail renders an event's kind-specific fields.
func detail(e obs.Event) string {
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	switch e.Kind {
	case obs.KindDRAMCmd:
		add("%s bank=%d row=%d", e.Cmd, e.Bank, e.Row)
	case obs.KindRefresh:
		if e.Bank != 0 {
			add("bank=%d", e.Bank)
		}
		add("shift=%d", e.Shift)
	case obs.KindRefreshRate:
		add("shift=%d (refresh interval x%d)", e.Shift, 1<<e.Shift)
	case obs.KindMECCTransition:
		add("phase=%s", e.Phase)
	case obs.KindSweepStart:
		add("regions=%d", e.Regions)
	case obs.KindSweepEnd:
		add("lines=%d regions=%d cycles=%d", e.Lines, e.Regions, e.Cycles)
	case obs.KindSMDWindow, obs.KindSMDEnable:
		add("mpkc=%.3f", e.MPKC)
	case obs.KindSMDDisable:
	case obs.KindMDTMark:
		add("region=%d", e.Region)
	case obs.KindDecode:
		add("cycles=%d strong=%v", e.Cycles, e.Strong)
	case obs.KindSpanStart:
		add("span=%d name=%s", e.Span, e.Name)
		if e.Parent != 0 {
			add("parent=%d", e.Parent)
		}
	case obs.KindSpanEnd:
		add("span=%d name=%s cycles=%d", e.Span, e.Name, e.Cycles)
		if e.Parent != 0 {
			add("parent=%d", e.Parent)
		}
	}
	return strings.Join(parts, " ")
}
