package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runMain invokes run() with a fresh flag set and the given arguments,
// capturing stdout.
func runMain(t *testing.T, args ...string) string {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	os.Args = append([]string{"obsdump"}, args...)
	flag.CommandLine = flag.NewFlagSet("obsdump", flag.PanicOnError)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	runErr := run()
	w.Close()
	os.Stdout = old
	os.Args, flag.CommandLine = oldArgs, oldFlags
	out := <-outc
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

// checkGolden compares out against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, out, golden string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("output differs from %s (run `go test -update` if intended)\ngot:\n%s\nwant:\n%s",
			golden, out, want)
	}
}

// TestGolden pins the full pretty-printed rendering — one line per
// event with kind-specific fields, the census, and the span latency
// tree — against a trace that covers every event kind. Regenerate with
// `go test -update`.
func TestGolden(t *testing.T) {
	out := runMain(t, filepath.Join("testdata", "trace.jsonl"))
	checkGolden(t, out, filepath.Join("testdata", "trace.golden"))
}

// TestGoldenJSON pins the -format json document over the same fixture,
// so both renderings stay in lockstep with the event schema.
func TestGoldenJSON(t *testing.T) {
	out := runMain(t, "-format", "json", filepath.Join("testdata", "trace.jsonl"))
	checkGolden(t, out, filepath.Join("testdata", "trace.golden.json"))
	var rep struct {
		TotalEvents int               `json:"total_events"`
		Census      map[string]uint64 `json:"census"`
		Spans       []map[string]any  `json:"spans"`
		Events      []map[string]any  `json:"events"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-format json output is not valid JSON: %v", err)
	}
	if rep.TotalEvents != 28 || len(rep.Events) != 28 {
		t.Errorf("total_events=%d events=%d, want 28/28", rep.TotalEvents, len(rep.Events))
	}
	if rep.Census["span_start"] != 5 || rep.Census["span_end"] != 3 {
		t.Errorf("census misses span kinds: %v", rep.Census)
	}
	if len(rep.Spans) != 4 {
		t.Errorf("spans = %v, want 4 names (run active idle sweep)", rep.Spans)
	}
}

// TestJSONFilter checks that -kinds and -n narrow the events array but
// leave total_events, census and spans computed over the whole trace.
func TestJSONFilter(t *testing.T) {
	out := runMain(t, "-format", "json", "-kinds", "decode", "-n", "1",
		filepath.Join("testdata", "trace.jsonl"))
	var rep struct {
		TotalEvents int              `json:"total_events"`
		Spans       []map[string]any `json:"spans"`
		Events      []map[string]any `json:"events"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 1 || rep.Events[0]["kind"] != "decode" {
		t.Errorf("filtered events = %v, want one decode", rep.Events)
	}
	if rep.TotalEvents != 28 || len(rep.Spans) != 4 {
		t.Errorf("summary must cover the whole trace: total=%d spans=%d", rep.TotalEvents, len(rep.Spans))
	}
}

// TestKindFilter checks -kinds and -n narrow the listing but leave the
// census counting every event.
func TestKindFilter(t *testing.T) {
	out := runMain(t, "-kinds", "refresh_rate", "-n", "2",
		filepath.Join("testdata", "trace.jsonl"))
	var listed int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "refresh interval") {
			listed++
		}
		if strings.Contains(line, "dram_cmd") && !strings.Contains(line, "events:") {
			// dram_cmd may only appear in the census section.
			if !strings.Contains(out[strings.Index(out, "events:"):], line) {
				t.Errorf("filtered kind leaked into listing: %q", line)
			}
		}
	}
	if listed != 2 {
		t.Errorf("-kinds refresh_rate -n 2 printed %d matching lines, want 2", listed)
	}
	if !strings.Contains(out, "28 events:") {
		t.Errorf("census should still count all 28 events:\n%s", out)
	}
}

// TestStdin checks the no-argument stdin path.
func TestStdin(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	w.Close()
	oldIn := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldIn }()
	out := runMain(t, "-census=false")
	if !strings.Contains(out, "mecc_transition") || strings.Contains(out, "events:") {
		t.Errorf("stdin rendering wrong:\n%s", out)
	}
}
