package morphecc

import (
	"testing"

	"repro/internal/line"
)

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 28 {
		t.Fatalf("benchmarks = %d, want 28", len(names))
	}
	if _, err := ProfileByName(names[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("want error")
	}
}

func TestRunFacade(t *testing.T) {
	opts := Options{Scale: 8000, Seed: 1}
	res, err := Run("libq", MECC, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Scheme != MECC || res.Benchmark != "libq" {
		t.Errorf("result: %+v", res)
	}
	if _, err := Run("bogus", MECC, opts); err == nil {
		t.Error("unknown benchmark: want error")
	}
	if _, err := Run("libq", MECC, Options{}); err == nil {
		t.Error("invalid options: want error")
	}
}

func TestRunProfileFacade(t *testing.T) {
	prof, err := ProfileByName("povray")
	if err != nil {
		t.Fatal(err)
	}
	prof = prof.Scaled(8000)
	res, err := RunProfile(prof, Baseline, Options{Scale: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC < 1.5 {
		t.Errorf("povray IPC = %v", res.IPC)
	}
	if _, err := RunProfile(prof, Baseline, Options{}); err == nil {
		t.Error("invalid options: want error")
	}
}

func TestCodecFacades(t *testing.T) {
	m, err := NewMorphableCodec()
	if err != nil {
		t.Fatal(err)
	}
	var data line.Line
	data[0] = 0xabcdef
	spare := m.Encode(data, 2) // ModeStrong
	got, ev := m.Decode(data.FlipBit(3).FlipBit(99), spare)
	if got != data || ev.Result.CorrectedBits != 2 {
		t.Errorf("morphable decode: %+v", ev)
	}
	c, err := CodecByName("ecc6")
	if err != nil {
		t.Fatal(err)
	}
	if c.StorageBits() != 60 {
		t.Error("ecc6 storage")
	}
	if _, err := CodecByName("zzz"); err == nil {
		t.Error("want error")
	}
}

func TestExperimentFacades(t *testing.T) {
	tbl, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RequiredStrength != 6 {
		t.Errorf("required strength = %d", tbl.RequiredStrength)
	}
	f8, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if f8.Reduction < 0.4 {
		t.Errorf("idle reduction = %v", f8.Reduction)
	}
	rw, err := RelatedWork(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Rows) != 5 {
		t.Errorf("related work rows = %d", len(rw.Rows))
	}
	integ, err := Integrity(200, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if integ.SilentCorruptions != 0 {
		t.Errorf("silent corruptions = %d", integ.SilentCorruptions)
	}
	f7, err := Fig7(Options{Scale: 8000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Bars) != 29 {
		t.Errorf("fig7 bars = %d", len(f7.Bars))
	}
	if _, err := Fig7(Options{}); err == nil {
		t.Error("invalid options: want error")
	}
}
