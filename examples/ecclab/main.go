// Ecclab explores the reliability design space behind the paper's
// Table I: for a chosen refresh period it reports the modelled bit error
// rate, the per-line and whole-memory failure probability at every ECC
// strength, and the minimum code meeting a target system failure rate —
// then validates the analytic pick with a fault-injection Monte Carlo
// through the real BCH decoder.
//
// Run: go run ./examples/ecclab [-period 1s] [-target 1e-6] [-trials 5000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/ecc"
	"repro/internal/line"
	"repro/internal/reliability"
	"repro/internal/retention"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ecclab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		period = flag.Duration("period", time.Second, "refresh period to analyze")
		target = flag.Float64("target", 1e-6, "acceptable system failure probability")
		trials = flag.Int("trials", 5000, "Monte Carlo validation trials")
		seed   = flag.Int64("seed", 1, "Monte Carlo seed")
	)
	flag.Parse()

	model := retention.DefaultModel()
	ber := model.BER(*period)
	fmt.Printf("refresh period %v -> modelled BER %.3g (%.0f expected failed bits per 1GB)\n\n",
		*period, ber, reliability.ExpectedFailedBits(ber, float64(uint64(8)<<30)))

	if ber <= 0 || ber >= 1 {
		return fmt.Errorf("period %v outside the model's useful range", *period)
	}

	fmt.Printf("%-8s %14s %18s\n", "ECC", "line failure", "system (1GB) fail")
	for t := 0; t <= 6; t++ {
		lf, err := reliability.LineFailure(reliability.DefaultLineBits, t, ber)
		if err != nil {
			return err
		}
		sf, err := reliability.SystemFailure(lf, reliability.DefaultMemoryLines)
		if err != nil {
			return err
		}
		marker := ""
		if sf < *target {
			marker = "  <- meets target"
		}
		fmt.Printf("ECC-%-4d %14.3g %18.3g%s\n", t, lf, sf, marker)
	}

	req, err := reliability.RequiredStrength(
		ber, reliability.DefaultLineBits, reliability.DefaultMemoryLines, *target, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nminimum strength incl. one soft-error margin level: ECC-%d\n", req)
	if req > 6 {
		fmt.Println("(beyond the 64-bit spare budget: shorten the refresh period)")
		return nil
	}

	// Monte Carlo validation with the real codec.
	codec, err := ecc.NewBCH(req, false)
	if err != nil {
		return err
	}
	inj := retention.NewInjector(*seed, ber)
	rng := rand.New(rand.NewSource(*seed + 1))
	failures := 0
	injected := 0
	for i := 0; i < *trials; i++ {
		var data line.Line
		for w := range data {
			data[w] = rng.Uint64()
		}
		check := codec.Encode(data)
		bad, badCheck := data, check
		for _, pos := range inj.FlipPositions(line.Bits + codec.StorageBits()) {
			injected++
			if pos < line.Bits {
				bad = bad.FlipBit(pos)
			} else {
				badCheck ^= uint64(1) << (pos - line.Bits)
			}
		}
		got, res := codec.Decode(bad, badCheck)
		if res.Uncorrectable || got != data {
			failures++
		}
	}
	fmt.Printf("\nMonte Carlo: %d lines at BER %.3g -> %d injected errors, %d uncorrected lines\n",
		*trials, ber, injected, failures)
	fmt.Printf("(analytic expectation: %.3g uncorrected lines)\n",
		float64(*trials)*mustLineFailure(req, ber))
	return nil
}

func mustLineFailure(t int, ber float64) float64 {
	lf, err := reliability.LineFailure(reliability.DefaultLineBits, t, ber)
	if err != nil {
		// Unreachable: arguments were validated by the caller's flow.
		panic(err)
	}
	return lf
}
