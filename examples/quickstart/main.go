// Quickstart: the two faces of the library in ~60 lines.
//
//  1. Codec level — encode a 64-byte line in the morphable Fig. 6 layout,
//     corrupt it like a retention failure would, decode it back.
//  2. System level — simulate one benchmark under MECC and print the
//     figures of merit.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	morphecc "repro"

	"repro/internal/ecc"
	"repro/internal/line"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Codec level ---------------------------------------------------
	codec, err := morphecc.NewMorphableCodec()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))
	var data line.Line
	for w := range data {
		data[w] = rng.Uint64()
	}

	// Idle mode: the line is stored with strong ECC (60-bit BCH, corrects
	// 6 errors) so memory can be refreshed every 1 s instead of 64 ms.
	spare := codec.Encode(data, ecc.ModeStrong)

	// A year's worth of slow-refresh retention failures, worst case:
	// six bit flips, one of them in a mode-replica bit.
	corrupted := data
	for _, bit := range []int{7, 130, 255, 311, 499} {
		corrupted = corrupted.FlipBit(bit)
	}
	corruptedSpare := spare ^ 0b0001 // one ECC-mode replica flips too

	restored, ev := codec.Decode(corrupted, corruptedSpare)
	fmt.Printf("codec: mode resolved as %v (%d mode-bit errors), corrected %d data errors, intact: %v\n",
		ev.Mode, ev.ModeBitErrors, ev.Result.CorrectedBits, restored == data)

	// --- System level ---------------------------------------------------
	// Simulate libquantum — the paper's worst case for always-strong
	// ECC — under the three schemes at 1/2000 of the paper's slice.
	opts := morphecc.Options{Scale: 2000, Seed: 1}
	base, err := morphecc.Run("libq", morphecc.Baseline, opts)
	if err != nil {
		return err
	}
	for _, scheme := range []morphecc.Scheme{morphecc.SECDED, morphecc.ECC6, morphecc.MECC} {
		res, err := morphecc.Run("libq", scheme, opts)
		if err != nil {
			return err
		}
		fmt.Printf("system: %-7v IPC %.3f (%.1f%% vs no-ECC baseline)\n",
			scheme, res.IPC, (res.IPC/base.IPC-1)*100)
	}
	return nil
}
