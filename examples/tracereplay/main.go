// Tracereplay demonstrates the substrate layers working together without
// the CPU model: it generates a raw (pre-cache) access stream, filters it
// through the 1 MB LLC to produce a miss trace, replays the misses
// through the memory controller and DRAM timing model, and reports
// latency, row-buffer locality and energy.
//
// Run: go run ./examples/tracereplay [-bench zeusmp] [-accesses 200000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracereplay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bench    = flag.String("bench", "zeusmp", "workload profile for the raw stream")
		accesses = flag.Int("accesses", 200_000, "raw accesses to generate")
		scale    = flag.Int("scale", 100, "profile scale divisor")
	)
	flag.Parse()

	prof, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	prof = prof.Scaled(*scale)

	dcfg := dram.DefaultConfig()
	gen, err := workload.NewGenerator(prof, dcfg.TotalLines(), 1)
	if err != nil {
		return err
	}

	// Stage 1: filter the raw stream through the LLC. The generator's
	// records are treated as post-L2 references here.
	llc, err := cache.New(1<<20, 64, 8)
	if err != nil {
		return err
	}
	var misses []trace.Record
	for i := 0; i < *accesses; i++ {
		rec, _ := gen.Next()
		res := llc.Access(rec.LineAddr, rec.Op == trace.OpWrite)
		if res.Hit {
			continue
		}
		misses = append(misses, trace.Record{Op: trace.OpRead, LineAddr: res.Fill})
		if res.WritebackValid {
			misses = append(misses, trace.Record{Op: trace.OpWrite, LineAddr: res.Writeback})
		}
	}
	cs := llc.Stats()
	fmt.Printf("cache: %d accesses -> %d misses (%.1f%% miss rate), %d writebacks\n",
		cs.Hits+cs.Misses, cs.Misses, cs.MissRate()*100, cs.Writebacks)

	// Stage 2: replay the miss trace through the memory system.
	ch, err := dram.NewChannel(dcfg)
	if err != nil {
		return err
	}
	done := 0
	ctl, err := memctrl.New(ch, memctrl.DefaultConfig(), func(*memctrl.Request) { done++ })
	if err != nil {
		return err
	}
	for _, rec := range misses {
		if rec.Op == trace.OpWrite {
			for !ctl.CanEnqueueWrite() {
				ctl.Step()
			}
			if err := ctl.EnqueueWrite(rec.LineAddr, 0); err != nil {
				return err
			}
			continue
		}
		for !ctl.CanEnqueueRead() {
			ctl.Step()
		}
		if err := ctl.EnqueueRead(rec.LineAddr, 0); err != nil {
			return err
		}
		// Closed-loop with a little pipelining: cap outstanding reads.
		for ctl.Pending() > 4 {
			ctl.Step()
		}
	}
	if _, err := ctl.DrainAll(100_000_000); err != nil {
		return err
	}

	ds := ch.Stats()
	ms := ctl.Stats()
	fmt.Printf("dram: %d reads, %d writes over %d cycles (%.2f us)\n",
		ds.NRD, ds.NWR, ch.Now(), float64(ch.Now())*dcfg.TCK().Seconds()*1e6)
	fmt.Printf("      avg read latency %.1f DRAM cycles, row-buffer hit rate %.1f%%\n",
		ms.AvgReadLatency(), float64(ds.RowHits)/float64(ds.RowHits+ds.RowMisses)*100)

	calc, err := power.NewCalculator(power.DefaultParams(), dcfg)
	if err != nil {
		return err
	}
	e := calc.Energy(ds)
	fmt.Printf("energy: background %.1f uJ, act/pre %.1f uJ, read %.1f uJ, write %.1f uJ, refresh %.1f uJ\n",
		e.BackgroundJ*1e6, e.ActPreJ*1e6, e.ReadJ*1e6, e.WriteJ*1e6, e.RefreshJ*1e6)
	return nil
}
