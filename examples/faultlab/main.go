// Faultlab drives the functional (data-storing) memory through repeated
// idle/active cycles while injecting retention faults, reporting what
// the ECC machinery actually did to keep the data intact. Crank up
// -period or -temp to watch the error load grow and, eventually, exceed
// the ECC-6 budget.
//
// Run: go run ./examples/faultlab [-lines 4096] [-epochs 5]
//
//	[-period 1s] [-temp 45]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/line"
	"repro/internal/memdata"
	"repro/internal/retention"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultlab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lines  = flag.Uint64("lines", 4096, "memory size in 64B lines")
		epochs = flag.Int("epochs", 5, "idle/active cycles to run")
		period = flag.Duration("period", time.Second, "idle self-refresh period")
		tempC  = flag.Float64("temp", retention.NominalTempC, "junction temperature (degC)")
		seed   = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()

	// The temperature knob folds into an effective refresh period:
	// retention halves per 10 degC, so a hot device behaves as if it
	// refreshed more slowly.
	model := retention.DefaultModel()
	effectiveBER := model.BERAtTemp(*period, *tempC)
	effectivePeriod := model.PeriodFor(effectiveBER)
	fmt.Printf("refresh period %v at %.0f degC -> effective BER %.3g (as if %v at nominal temp)\n\n",
		*period, *tempC, effectiveBER, effectivePeriod.Round(time.Millisecond))

	mem, err := memdata.New(*lines, core.DefaultConfig(*lines), *seed)
	if err != nil {
		return err
	}
	if err := mem.ExitIdle(0); err != nil {
		return err
	}

	// Fill a quarter of memory with pattern data.
	rng := rand.New(rand.NewSource(*seed))
	golden := map[uint64]line.Line{}
	now := uint64(0)
	for i := uint64(0); i < *lines/4; i++ {
		var data line.Line
		for w := range data {
			data[w] = rng.Uint64()
		}
		now += 10
		if err := mem.Write(i, data, now); err != nil {
			return err
		}
		golden[i] = data
	}
	fmt.Printf("wrote %d lines (%d KB of pattern data)\n\n", len(golden), len(golden)*64/1024)
	fmt.Printf("%-6s %10s %12s %12s %8s\n", "epoch", "injected", "corrected", "upgraded", "intact")

	totalInjected := uint64(0)
	for e := 1; e <= *epochs; e++ {
		before := mem.Stats()
		tr, err := mem.EnterIdle(now)
		if err != nil {
			return err
		}
		if err := mem.IdleFor(5*time.Minute, effectivePeriod); err != nil {
			return err
		}
		now += 1_000_000
		if err := mem.ExitIdle(now); err != nil {
			return err
		}
		// Read everything back and verify.
		intact := 0
		lost := 0
		miscorrected := 0
		for addr, want := range golden {
			now += 10
			got, err := mem.Read(addr, now)
			switch {
			case err != nil:
				lost++
			case got == want:
				intact++
			default:
				// Beyond roughly 7 errors per line even BCH can land in
				// a different codeword's decoding sphere. That regime is
				// astronomically outside Table I's provisioning; this lab
				// exists to let you find the cliff.
				miscorrected++
			}
		}
		after := mem.Stats()
		injected := after.InjectedErrors - before.InjectedErrors
		totalInjected += injected
		fmt.Printf("%-6d %10d %12d %12d %7d/%d",
			e, injected, after.CorrectedBits-before.CorrectedBits, tr.LinesUpgraded, intact, len(golden))
		if lost > 0 {
			fmt.Printf("  (%d lines DETECTED uncorrectable)", lost)
		}
		if miscorrected > 0 {
			fmt.Printf("  (%d lines MISCORRECTED — far beyond the design distance)", miscorrected)
		}
		fmt.Println()
	}
	s := mem.Stats()
	fmt.Printf("\ntotals: %d injected, %d bits corrected, %d uncorrectable, %d mode-bit tie decodes\n",
		s.InjectedErrors, s.CorrectedBits, s.Uncorrectable, s.TriedBoth)
	switch {
	case s.Uncorrectable == 0:
		fmt.Println("all data survived — that is the Table I provisioning doing its job")
	default:
		fmt.Println("data was lost beyond the ECC-6 budget — Table I says to shorten the refresh period")
	}
	return nil
}
