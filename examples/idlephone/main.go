// Idlephone models the paper's motivating scenario (Fig. 1): a
// smartphone used in short bursts across a day, idle 95% of the time.
// It composes measured active-mode memory power with the analytic
// idle-mode model — including MECC's ECC-Upgrade transition cost at
// every idle entry — and reports the daily memory energy budget for the
// baseline, always-ECC-6 and MECC systems.
//
// Run: go run ./examples/idlephone [-sessions 48] [-session-min 15]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "idlephone:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sessions   = flag.Int("sessions", 48, "active usage bursts per day")
		sessionMin = flag.Float64("session-min", 1.5, "minutes per burst")
		bench      = flag.String("bench", "webbrowse", "workload during active bursts (SPEC or mobile: appstart, videoplay, webbrowse, gamerender)")
		scale      = flag.Int("scale", 2000, "simulation scale for the active-power measurement")
		batteryWh  = flag.Float64("battery-wh", 11.0, "battery capacity (a 2900 mAh / 3.8 V phone ≈ 11 Wh)")
	)
	flag.Parse()

	day := 24 * time.Hour
	activePerDay := time.Duration(float64(*sessions) * *sessionMin * float64(time.Minute))
	if activePerDay >= day {
		return fmt.Errorf("active time exceeds the day")
	}
	idlePerDay := day - activePerDay

	// Measure active-mode memory power for each scheme. The workload may
	// come from the SPEC suite or the mobile scenario set.
	prof, err := workload.ByName(*bench)
	if err != nil {
		if prof, err = workload.MobileByName(*bench); err != nil {
			return err
		}
	}
	activeW := map[sim.SchemeKind]float64{}
	for _, k := range []sim.SchemeKind{sim.SchemeBaseline, sim.SchemeECC6, sim.SchemeMECC} {
		cfg := sim.DefaultConfig(k, 4_000_000_000/int64(*scale))
		res, err := sim.RunBenchmark(prof.Scaled(*scale), cfg)
		if err != nil {
			return err
		}
		activeW[k] = res.ActivePowerW
	}

	// Idle-mode power and MECC's per-transition upgrade cost.
	dcfg := dram.DefaultConfig()
	calc, err := power.NewCalculator(power.DefaultParams(), dcfg)
	if err != nil {
		return err
	}
	mecc := core.DefaultConfig(dcfg.TotalLines())
	// The upgrade sweep touches the workload's footprint (MDT-limited).
	footLines := prof.FootprintLines()
	sweepSec := float64(footLines) * float64(mecc.UpgradeCyclesPerLine) / float64(dcfg.CPUClockHz)
	sweepJ := calc.ReadLineEnergy() * float64(footLines) * 2 // read + write back

	fmt.Printf("usage pattern: %d bursts x %.1f min -> active %.1f%% of the day (%s idle)\n",
		*sessions, *sessionMin, float64(activePerDay)/float64(day)*100, idlePerDay.Round(time.Minute))
	fmt.Printf("MECC idle-entry upgrade: %.0f ms and %.2f mJ per transition (MDT-limited to the %d MB footprint)\n\n",
		sweepSec*1000, sweepJ*1000, prof.FootprintMB)

	type row struct {
		name    string
		activeW float64
		idleW   float64
		extraJ  float64
	}
	rows := []row{
		{"Baseline (no ECC)", activeW[sim.SchemeBaseline], calc.IdlePower(0).Total(), 0},
		{"ECC-6 always", activeW[sim.SchemeECC6], calc.IdlePower(4).Total(), 0},
		{"MECC", activeW[sim.SchemeMECC], calc.IdlePower(4).Total(),
			float64(*sessions) * sweepJ},
	}
	var baseTotal float64
	fmt.Printf("%-18s %10s %10s %12s %12s %8s\n",
		"scheme", "active mW", "idle mW", "active J/day", "idle J/day", "total J")
	for i, r := range rows {
		activeJ := r.activeW * activePerDay.Seconds()
		idleJ := r.idleW * idlePerDay.Seconds()
		total := activeJ + idleJ + r.extraJ
		if i == 0 {
			baseTotal = total
		}
		fmt.Printf("%-18s %10.1f %10.3f %12.1f %12.1f %8.1f  (%+.1f%%)\n",
			r.name, r.activeW*1e3, r.idleW*1e3, activeJ, idleJ, total,
			(total/baseTotal-1)*100)
	}
	// Battery impact: memory's share of the daily budget.
	batteryJ := *batteryWh * 3600
	baseDayJ := rows[0].activeW*activePerDay.Seconds() + rows[0].idleW*idlePerDay.Seconds()
	meccDayJ := rows[2].activeW*activePerDay.Seconds() + rows[2].idleW*idlePerDay.Seconds() + rows[2].extraJ
	fmt.Printf("\nbattery impact (%.0f Wh pack): memory uses %.2f%% of the battery per day at\n",
		*batteryWh, baseDayJ/batteryJ*100)
	fmt.Printf("baseline, %.2f%% with MECC — %.1f%% of a battery saved every day, for free.\n",
		meccDayJ/batteryJ*100, (baseDayJ-meccDayJ)/batteryJ*100)
	fmt.Println("\nNote: ECC-6 matches MECC's battery savings but costs ~10% performance in")
	fmt.Println("every active burst; MECC's only overhead is the upgrade sweep at idle entry.")
	return nil
}
