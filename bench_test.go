package morphecc

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its exhibit through internal/experiments and prints
// the same rows the paper reports (once, on the first iteration), plus
// headline values as benchmark metrics. The default scale here is 1/2000
// of the paper's 4-billion-instruction slices so `go test -bench=.`
// completes in minutes; run cmd/paperbench with -scale for bigger runs.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

const benchScale = 2000

var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
	benchSuiteErr  error
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSuiteOnce.Do(func() {
		benchSuite, benchSuiteErr = experiments.NewSuite(experiments.Options{Scale: benchScale, Seed: 1})
	})
	if benchSuiteErr != nil {
		b.Fatal(benchSuiteErr)
	}
	return benchSuite
}

// printOnce emits an exhibit's rows on the first iteration only.
func printOnce(b *testing.B, i int, title, rendered string) {
	b.Helper()
	if i == 0 {
		fmt.Printf("\n=== %s (scale 1/%d) ===\n%s", title, benchScale, rendered)
	}
}

func BenchmarkTableI_FailureProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Table I: line/system failure probability", res.Rendered)
		b.ReportMetric(float64(res.RequiredStrength), "required-ECC")
	}
}

func BenchmarkTableII_SystemConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, "Table II: baseline system configuration", experiments.TableII())
	}
}

func BenchmarkTableIII_WorkloadCharacterization(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableIII(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Table III: benchmark characterization", res.Rendered)
		b.ReportMetric(res.Rows[2].MPKI, "high-MPKI")
	}
}

func BenchmarkTableIV_PowerParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printOnce(b, i, "Table IV: memory power parameters", experiments.TableIV())
	}
}

func BenchmarkFig2_RetentionDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2()
		printOnce(b, i, "Fig 2: retention-time distribution", res.Rendered)
		b.ReportMetric(res.Slope, "loglog-slope")
	}
}

func BenchmarkFig3_DecodeLatencyImpact(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 3: performance impact of ECC decode latency", res.Rendered)
		b.ReportMetric(res.Groups[3].ECC6, "ECC6-all-normIPC")
	}
}

func BenchmarkFig7_PerformanceComparison(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 7: SECDED / ECC-6 / MECC normalized IPC", res.Rendered)
		all := res.Bars[len(res.Bars)-1]
		b.ReportMetric(all.MECC, "MECC-all-normIPC")
		b.ReportMetric(all.ECC6, "ECC6-all-normIPC")
	}
}

func BenchmarkFig8_IdlePower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 8: refresh power and idle power breakdown", res.Rendered)
		b.ReportMetric(res.Reduction, "idle-power-reduction")
	}
}

func BenchmarkFig9_ActivePowerEnergyEDP(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 9: active-mode power / energy / EDP", res.Rendered)
		b.ReportMetric(res.Rows[2].EDP, "MECC-EDP")
	}
}

func BenchmarkFig10_TotalEnergy(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 10: total memory energy at 95% idle", res.Rendered)
		b.ReportMetric(res.Saving, "MECC-total-saving")
	}
}

func BenchmarkFig11_MDTEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 11: MDT-tracked memory per benchmark", res.Rendered)
		b.ReportMetric(res.MeanTrackedMB, "mean-tracked-MB")
	}
}

func BenchmarkFig12_DecodeLatencySensitivity(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 12: sensitivity to ECC-6 decode latency", res.Rendered)
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.MECC, "MECC-at-60cyc")
	}
}

func BenchmarkFig13_TransitionTime(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 13: MECC warm-up transient vs slice length", res.Rendered)
		if n := len(res.Rows); n > 0 {
			b.ReportMetric(res.Rows[n-1].MECC, "MECC-final-normIPC")
		}
	}
}

func BenchmarkFig14_SelectiveMemoryDowngrade(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Fig 14: SMD downgrade-disabled time (MPKC=2)", res.Rendered)
		b.ReportMetric(float64(res.NeverEnabled), "never-enabled")
	}
}

func BenchmarkAblationMDTSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMDT(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: MDT region-count sweep", res.Rendered)
	}
}

func BenchmarkAblationSMDThreshold(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSMDThreshold(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: SMD threshold sweep", res.Rendered)
	}
}

func BenchmarkAblationRefreshSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRefreshSweep()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: refresh period vs required ECC", res.Rendered)
	}
}

func BenchmarkIntegrityMonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Integrity(2000, 0, 7)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Integrity: end-to-end fault injection at paper BER", res.Rendered)
		b.ReportMetric(float64(res.SilentCorruptions), "silent-corruptions")
	}
}

func BenchmarkRelatedWorkVRT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RelatedWork(1)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Related work: refresh schemes under VRT", res.Rendered)
	}
}

func BenchmarkRefreshModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RefreshModes()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Refresh modes: power vs usable capacity", res.Rendered)
	}
}

func BenchmarkAblationAddressMapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationMapping(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: address-interleaving policy", res.Rendered)
	}
}

func BenchmarkAblationRefreshPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRefreshPolicy(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: all-bank REF vs per-bank REFpb", res.Rendered)
	}
}

func BenchmarkAblationWeakCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWeakCode(1000, 3)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: weak-code choice under soft errors", res.Rendered)
		b.ReportMetric(float64(res.Rows[0].Corrupted), "none-corrupted")
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationScheduler(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: memory-scheduler policy", res.Rendered)
	}
}

func BenchmarkDayInTheLife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DayInTheLife(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Day-in-the-life: usage pattern energy", res.Rendered)
		b.ReportMetric(res.Rows[2].SavingPct, "MECC-saving-%")
	}
}

func BenchmarkCapacityScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CapacityScaling()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Capacity scaling: idle power vs memory size", res.Rendered)
	}
}

func BenchmarkAblationTemperature(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationTemperature()
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: temperature vs required ECC at 1s refresh", res.Rendered)
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPrefetch(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Ablation: next-line prefetcher under MECC", res.Rendered)
	}
}

func BenchmarkHiECCGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.HiECC()
		printOnce(b, i, "Related work: Hi-ECC granularity trade-off", res.Rendered)
	}
}

func BenchmarkDaemonStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Daemon(experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Daemon study: SMD under idle-period background activity", res.Rendered)
	}
}

func BenchmarkModelValidation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.ModelValidation(s)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(b, i, "Model validation: simulator vs first-order theory", res.Rendered)
		b.ReportMetric(res.MeanAbsErrPct, "mean-abs-err-%")
	}
}
