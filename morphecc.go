// Package morphecc is a Go reproduction of "Reducing Refresh Power in
// Mobile Devices with Morphable ECC" (Chou, Nair, Qureshi — DSN 2015).
//
// Morphable ECC (MECC) keeps DRAM lines protected by a 6-error-correcting
// BCH code while a mobile device idles — allowing the refresh period to
// stretch 16x from 64 ms to 1 s and nearly halving memory idle power —
// and lazily converts lines to a 2-cycle SECDED code on first touch when
// the device wakes, so active-mode performance stays within ~2% of an
// unprotected system.
//
// The package is a façade over the full simulation stack:
//
//   - internal/gf2, internal/bch, internal/hamming, internal/ecc — real,
//     tested ECC codecs (GF(2^10) BCH up to t=6, (72,64) and line-level
//     SECDED) plus the morphable Fig. 6 line layout;
//   - internal/dram, internal/memctrl, internal/power — a cycle-level
//     LPDDR channel model with FR-FCFS scheduling, refresh and
//     power-down, and the Micron-methodology power calculator;
//   - internal/retention, internal/reliability — the retention-failure
//     model (Fig. 2) and the analytic Table I;
//   - internal/core — the MECC controller with MDT and SMD;
//   - internal/workload, internal/cpu, internal/sim — 28 SPEC2006-
//     calibrated synthetic workloads driven through an in-order core;
//   - internal/experiments — regenerates every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	res, err := morphecc.Run("libq", morphecc.MECC, morphecc.DefaultOptions())
//	fmt.Println(res.IPC)
//
// The cmd/paperbench tool prints every table and figure; see DESIGN.md
// and EXPERIMENTS.md for the experiment index and measured numbers.
package morphecc

import (
	"repro/internal/ecc"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scheme selects the error-protection scheme to simulate.
type Scheme = sim.SchemeKind

// Schemes compared in the paper.
const (
	// Baseline is no error correction.
	Baseline = sim.SchemeBaseline
	// SECDED always uses the weak code (2-cycle decode).
	SECDED = sim.SchemeSECDED
	// ECC6 always uses the strong code (30-cycle decode).
	ECC6 = sim.SchemeECC6
	// MECC is Morphable ECC.
	MECC = sim.SchemeMECC
)

// Options alias the experiment harness options (Scale divides the
// paper's 4-billion-instruction slices).
type Options = experiments.Options

// Result aliases the simulator's per-run figures of merit.
type Result = sim.Result

// Profile aliases a synthetic workload profile.
type Profile = workload.Profile

// Codec aliases the line-granularity ECC interface.
type Codec = ecc.Codec

// Morphable aliases the Fig. 6 morphable line codec.
type Morphable = ecc.Morphable

// DefaultOptions returns the default harness scale (1/400 of the paper's
// slice lengths, with footprints scaled to match).
func DefaultOptions() Options { return experiments.DefaultOptions() }

// Benchmarks lists the 28 workload names in the paper's Fig. 7 order.
func Benchmarks() []string { return workload.Names() }

// ProfileByName looks up one workload profile.
func ProfileByName(name string) (Profile, error) { return workload.ByName(name) }

// Run simulates one benchmark under one scheme at the given scale and
// returns its figures of merit.
func Run(benchmark string, scheme Scheme, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	prof, err := workload.ByName(benchmark)
	if err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultConfig(scheme, opts.Instructions())
	cfg.Seed = opts.Seed
	cfg.MECC.SMDWindowCycles /= uint64(opts.Scale)
	if cfg.MECC.SMDWindowCycles == 0 {
		cfg.MECC.SMDWindowCycles = 1
	}
	return sim.RunBenchmark(prof.Scaled(opts.Scale), cfg)
}

// RunProfile simulates a custom workload profile.
func RunProfile(prof Profile, scheme Scheme, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	cfg := sim.DefaultConfig(scheme, opts.Instructions())
	cfg.Seed = opts.Seed
	return sim.RunBenchmark(prof, cfg)
}

// NewMorphableCodec builds the paper's codec pair (line SECDED weak,
// BCH ECC-6 strong) in the Fig. 6 layout, for direct encode/decode use.
func NewMorphableCodec() (*Morphable, error) { return ecc.NewDefaultMorphable() }

// CodecByName builds a single codec from its registry name ("none",
// "secded-word", "secded-line", "ecc1".."ecc6", extended "ecc6x").
func CodecByName(name string) (Codec, error) { return ecc.ByName(name) }

// The headline experiments, re-exported for library users; the full set
// (every table/figure, ablations, related work) lives in
// internal/experiments and is reachable through cmd/paperbench.

// TableI returns the paper's reliability table: per-line and per-system
// failure probability for ECC-0..6 at the 1 s-refresh bit error rate.
func TableI() (experiments.TableIResult, error) { return experiments.TableI() }

// Fig7 runs the headline performance comparison (SECDED / ECC-6 / MECC
// normalized IPC across the 28-benchmark suite) at the given scale.
func Fig7(opts Options) (experiments.Fig7Result, error) {
	s, err := experiments.NewSuite(opts)
	if err != nil {
		return experiments.Fig7Result{}, err
	}
	return experiments.Fig7(s)
}

// Fig8 returns the idle-mode power comparison (analytic; scale-free).
func Fig8() (experiments.Fig8Result, error) { return experiments.Fig8() }

// RelatedWork compares RAIDR / Flikker / SECRET / MECC on refresh rate,
// idle power and VRT robustness.
func RelatedWork(seed int64) (experiments.RelatedWorkResult, error) {
	return experiments.RelatedWork(seed)
}

// Integrity runs the end-to-end fault-injection Monte Carlo through the
// real codecs (stressBER 0 = the paper's idle-mode BER).
func Integrity(trials int, stressBER float64, seed int64) (experiments.IntegrityResult, error) {
	return experiments.Integrity(trials, stressBER, seed)
}
