# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test cover cover-gate bench bench-json bench-compare vet lint lint-fast lint-baseline speclint self-test fmt paperbench trace-demo obs-smoke obs-demo scenarios scenarios-short fuzz fuzz-short clean

# Pinned staticcheck release for CI; `make lint` uses a local install
# when one is on PATH and skips it (with a note) otherwise.
STATICCHECK_VERSION ?= 2025.1.1

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

cover:
	$(GO) test -cover ./...

# Enforce per-package coverage floors (internal/bch, core, sim); see
# scripts/cover_gate.sh for the numbers and the raising policy.
cover-gate:
	GO=$(GO) sh scripts/cover_gate.sh

# The per-exhibit benchmark harness (reduced scale).
bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable hot-path numbers (ns/op, allocs/op) plus the fig7
# end-to-end wall-clock, written to BENCH_baseline.json.
bench-json:
	$(GO) run ./cmd/benchjson > BENCH_baseline.json
	@cat BENCH_baseline.json

# Re-run the hot-path benchmarks and diff them against the committed
# PR-6 reference: per-benchmark deltas on stderr, fresh numbers in
# BENCH_current.json, nonzero exit when anything is >10% slower. CI
# runs this as a non-blocking job and uploads BENCH_current.json.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_pr6.json > BENCH_current.json

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/meccvet: the seventeen-analyzer
# suite — determinism, hotpath + hotclosure + hotescape, nilhook,
# cycleunits + unitflow + cyclewrap, nopanic, errwrap, concsafety +
# atomicfield + seqlock, seedflow, and the concurrency layer lockorder +
# goleak + chandiscipline — see DESIGN.md §9) plus vet, plus
# scenario-spec validation, plus staticcheck when available. meccvet
# compares against the committed lint.baseline.json, so only NEW
# findings fail, and keeps its incremental fact cache in .meccvet-cache
# so warm re-runs on an unchanged tree replay from metadata alone. CI
# runs the same set with staticcheck pinned at STATICCHECK_VERSION.
lint: speclint
	$(GO) vet ./...
	$(GO) run ./cmd/meccvet -baseline lint.baseline.json -cache-dir .meccvet-cache ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not on PATH; skipping (CI installs $(STATICCHECK_VERSION))"; \
	fi

# Just the cached meccvet sweep — the editor-save loop. Warm runs on an
# unchanged tree skip parsing and type-checking entirely (sub-second);
# after an edit only the changed packages and the whole-program
# analyzers re-run.
lint-fast:
	$(GO) run ./cmd/meccvet -baseline lint.baseline.json -cache-dir .meccvet-cache ./...

# Validate every committed scenario spec (schema, invariant expressions,
# cross-references) without running the scenarios.
speclint:
	$(GO) run ./cmd/meccscn validate internal/scenario/specs/*.json

# Accept the current meccvet findings into lint.baseline.json (matching
# on file+analyzer+message, so line drift never stales it). Review the
# diff before committing: every entry is a finding nobody will see
# again.
lint-baseline:
	$(GO) run ./cmd/meccvet -baseline lint.baseline.json -write-baseline ./...

# The analysis framework's own test suite: SSA builder goldens and
# def-use invariants, all analyzer fixtures, and the meccvet CLI flag
# tests. CI runs this under -race.
self-test:
	$(GO) test ./internal/analysis/... ./cmd/meccvet/...

fmt:
	gofmt -l -w .

# Regenerate every table and figure of the paper (scale 1/400 ≈ minutes).
paperbench:
	$(GO) run ./cmd/paperbench

# Produce a short JSONL event trace from one MECC+SMD slice and
# pretty-print the interesting part of it (see DESIGN.md Observability).
trace-demo:
	$(GO) run ./cmd/meccsim -bench libq -scheme mecc -smd -scale 20000 \
		-trace-out trace-demo.jsonl > /dev/null
	$(GO) run ./cmd/obsdump -n 40 \
		-kinds mecc_transition,refresh_rate,refresh,smd_window,smd_enable,smd_disable,mdt_mark \
		trace-demo.jsonl

# Start a short MECC slice with the obs server attached, poll /healthz,
# validate the live /metrics exposition with the in-repo strict parser
# (cmd/obsscrape), and check the /progress JSON. CI runs this.
obs-smoke:
	GO=$(GO) sh scripts/obs_smoke.sh

# Same as obs-smoke, but also prints the scraped progress JSON and a
# metrics excerpt — a one-command tour of the live observability layer
# (see DESIGN.md Observability).
obs-demo:
	GO=$(GO) sh scripts/obs_smoke.sh demo

# Run every built-in scenario (internal/scenario/specs) end to end and
# evaluate the declared invariants; nonzero exit on any failure. The
# -short variant runs the fast subset CI uses on pull requests.
scenarios:
	$(GO) run ./cmd/meccscn run -v

scenarios-short:
	$(GO) run ./cmd/meccscn run -short

# Short fuzz session over the parsers and the BCH decoder.
fuzz:
	$(GO) test -run=XXX -fuzz FuzzDecodeNeverPanics -fuzztime 10s ./internal/bch/
	$(GO) test -run=XXX -fuzz FuzzReadText -fuzztime 10s ./internal/trace/

# 10-second BCH fuzz pass seeded with the extension-bit-guard and
# t+1-error corpus (testdata/fuzz); quick regression check for the
# decoder's miscorrection defences.
fuzz-short:
	$(GO) test -run=XXX -fuzz FuzzDecodeNeverPanics -fuzztime 10s ./internal/bch/
	$(GO) test -run=XXX -fuzz FuzzEncodeDecodeRoundTrip -fuzztime 10s ./internal/bch/

clean:
	$(GO) clean ./...
