# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test cover bench vet fmt paperbench fuzz clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

cover:
	$(GO) test -cover ./...

# The per-exhibit benchmark harness (reduced scale).
bench:
	$(GO) test -bench=. -benchmem .

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every table and figure of the paper (scale 1/400 ≈ minutes).
paperbench:
	$(GO) run ./cmd/paperbench

# Short fuzz session over the parsers and the BCH decoder.
fuzz:
	$(GO) test -run=XXX -fuzz FuzzDecodeNeverPanics -fuzztime 10s ./internal/bch/
	$(GO) test -run=XXX -fuzz FuzzReadText -fuzztime 10s ./internal/trace/

clean:
	$(GO) clean ./...
