#!/usr/bin/env sh
# cover_gate.sh — per-package coverage floors for the core simulation
# packages. Run from the repo root (make cover-gate). Floors sit about
# ten points under the measured numbers so the gate catches real
# erosion, not noise; raise them as coverage grows, never lower them
# to make a PR pass.
#
# When GITHUB_STEP_SUMMARY is set (GitHub Actions), a markdown table of
# the per-package numbers is appended to the job summary.
set -eu

GO=${GO:-go}

# "import-path floor" pairs.
GATES='
repro/internal/bch 85
repro/internal/core 63
repro/internal/sim 76
'

fail=0
rows=''
for pkg in $(printf '%s\n' "$GATES" | awk 'NF {print $1}'); do
    floor=$(printf '%s\n' "$GATES" | awk -v p="$pkg" '$1 == p {print $2}')
    line=$("$GO" test -cover "$pkg" | tail -n 1)
    pct=$(printf '%s\n' "$line" | grep -o '[0-9.]*%' | head -n 1 | tr -d '%')
    if [ -z "$pct" ]; then
        echo "cover_gate: no coverage figure for $pkg: $line" >&2
        exit 2
    fi
    ok=$(awk -v p="$pct" -v f="$floor" 'BEGIN {print (p >= f) ? "ok" : "FAIL"}')
    [ "$ok" = ok ] || fail=1
    printf '%-24s %6s%%  (floor %s%%)  %s\n' "$pkg" "$pct" "$floor" "$ok"
    rows="$rows| $pkg | ${pct}% | ${floor}% | $ok |
"
done

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo '### Coverage gate'
        echo
        echo '| package | coverage | floor | status |'
        echo '|---|---|---|---|'
        printf '%s' "$rows"
    } >> "$GITHUB_STEP_SUMMARY"
fi

if [ "$fail" -ne 0 ]; then
    echo 'cover_gate: coverage fell below a floor' >&2
    exit 1
fi
