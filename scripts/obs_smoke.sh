#!/bin/sh
# Smoke-test the live observability endpoints end to end, with no
# dependency beyond the go toolchain and curl: start meccsim with the
# obs server on a local port, poll /healthz until it answers, validate
# /metrics with the repo's own strict exposition parser (cmd/obsscrape)
# including the per-refresh-tier and per-ECC-mode series, and check
# /progress returns the expected JSON keys. "demo" as the first
# argument additionally prints the scraped progress and a metrics
# excerpt (that is what `make obs-demo` runs).
set -eu

GO=${GO:-go}
PORT=${OBS_SMOKE_PORT:-39123}
BASE=http://127.0.0.1:$PORT
MODE=${1:-check}

bin=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT

$GO build -o "$bin/meccsim" ./cmd/meccsim
$GO build -o "$bin/obsscrape" ./cmd/obsscrape

"$bin/meccsim" -bench libq -scheme mecc -smd -scale 2000 \
    -serve "127.0.0.1:$PORT" -linger 30s >/dev/null 2>"$bin/serve.log" &
pid=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then ok=1; break; fi
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "obs_smoke: /healthz never came up; server log:" >&2
    cat "$bin/serve.log" >&2
    exit 1
fi

# The exposition must parse cleanly and carry the tiered-refresh and
# per-mode read counters the exporter exists to surface.
"$bin/obsscrape" -require \
    memctrl_tier_refreshes_total,mecc_reads_total,memctrl_refreshes_total,sim_decode_cycles \
    "$BASE/metrics"

prog=$(curl -fsS "$BASE/progress")
case $prog in
*'"phase"'*) ;;
*)
    echo "obs_smoke: /progress missing phase: $prog" >&2
    exit 1
    ;;
esac
case $prog in
*'"sim_time_cycles"'*) ;;
*)
    echo "obs_smoke: /progress missing sim_time_cycles: $prog" >&2
    exit 1
    ;;
esac

if [ "$MODE" = demo ]; then
    echo "--- $BASE/progress"
    echo "$prog"
    echo "--- $BASE/metrics (excerpt)"
    curl -fsS "$BASE/metrics" | grep -E '^(# |memctrl_tier|mecc_reads|sched_wheel|batch_pool)' | head -40
fi

echo "obs_smoke: ok"
